//! Worker-stats accounting: on one thread, the parallel backend must do
//! exactly the work the sequential backend does — same distance
//! computations, same queue insertions, same expansions, same node
//! accesses — because a single worker receives the whole frontier (one
//! root pair) and every unit of work happens in exactly one place. Any
//! drift means a parallel path double-counts (e.g. re-counting a pooled
//! stage-two seed that was already counted when it first entered a queue)
//! or silently skips work.
//!
//! Excluded from the parity set: `bound_tightenings` (the sequential
//! backend has no shared bound to publish into), wall-clock and modeled
//! I/O times, `node_disk_reads` (buffer state carries across the runs),
//! and — for the incremental join only — `distq_insertions` (the parallel
//! cursor owns a merge-side distance queue the sequential cursor does not
//! have).
//!
//! The one-thread parity tests run against the *work-stealing* path
//! ([`JoinConfig::steal`] defaults on), so they also pin its claim
//! protocol: a lone worker claims the single root seed and replays the
//! sequential join counter for counter, stealing nothing. The dedicated
//! steal-accounting tests below pin the other direction — with stealing
//! disabled the steal counters must stay zero at any thread count.

use amdj_core::{
    am_kdj, b_kdj, par_am_idj, par_am_kdj, par_b_kdj, AmIdj, AmIdjOptions, AmKdjOptions,
    JoinConfig, JoinStats,
};
use amdj_geom::{Point, Rect};
use amdj_rtree::{RTree, RTreeParams};

/// Tie-free dataset: irrational-ish strides keep every pair distance
/// distinct, so sequential and single-worker-parallel traversal orders
/// coincide exactly and the counter comparison is meaningful.
fn scatter(n: usize, sx: f64, sy: f64, phase: f64) -> Vec<(Rect<2>, u64)> {
    (0..n * n)
        .map(|i| {
            let x = (i % n) as f64 * sx + (i as f64 * 0.0137 + phase).sin();
            let y = (i / n) as f64 * sy + (i as f64 * 0.0271 + phase).cos();
            (Rect::from_point(Point::new([x, y])), i as u64)
        })
        .collect()
}

fn trees(a: &[(Rect<2>, u64)], b: &[(Rect<2>, u64)]) -> (RTree<2>, RTree<2>) {
    (
        RTree::bulk_load(RTreeParams::for_tests(), a.to_vec()),
        RTree::bulk_load(RTreeParams::for_tests(), b.to_vec()),
    )
}

fn assert_parity(label: &str, seq: &JoinStats, par: &JoinStats, with_distq: bool) {
    assert_eq!(seq.results, par.results, "{label}: results");
    assert_eq!(seq.stages, par.stages, "{label}: stages");
    assert_eq!(seq.real_dist, par.real_dist, "{label}: real_dist");
    assert_eq!(seq.axis_dist, par.axis_dist, "{label}: axis_dist");
    assert_eq!(
        seq.mainq_insertions, par.mainq_insertions,
        "{label}: mainq_insertions"
    );
    if with_distq {
        assert_eq!(
            seq.distq_insertions, par.distq_insertions,
            "{label}: distq_insertions"
        );
    }
    assert_eq!(
        seq.compq_insertions, par.compq_insertions,
        "{label}: compq_insertions"
    );
    assert_eq!(seq.comp_replays, par.comp_replays, "{label}: comp_replays");
    assert_eq!(
        seq.stage1_expansions, par.stage1_expansions,
        "{label}: stage1_expansions"
    );
    assert_eq!(
        seq.stage2_expansions, par.stage2_expansions,
        "{label}: stage2_expansions"
    );
    assert_eq!(
        seq.node_requests, par.node_requests,
        "{label}: node_requests"
    );
}

#[test]
fn exact_policy_one_thread_equals_sequential() {
    let a = scatter(13, 1.618, 2.414, 0.0);
    let b = scatter(13, 1.732, 2.236, 0.37);
    let (r, s) = trees(&a, &b);
    for k in [1, 17, 90, 300] {
        let seq = b_kdj(&r, &s, k, &JoinConfig::unbounded());
        let par = par_b_kdj(&r, &s, k, &JoinConfig::unbounded(), 1);
        assert_eq!(seq.results, par.results, "k={k}: results must be identical");
        assert_parity(&format!("b_kdj k={k}"), &seq.stats, &par.stats, true);
        // One worker, one root seed: there is no one to steal from.
        assert_eq!(par.stats.pairs_stolen, 0, "k={k}: pairs_stolen");
    }
}

#[test]
fn aggressive_policy_one_thread_equals_sequential() {
    let a = scatter(12, 1.618, 2.414, 0.1);
    let b = scatter(12, 1.732, 2.236, 0.73);
    let (r, s) = trees(&a, &b);
    let k = 80;
    let exact = b_kdj(&r, &s, k, &JoinConfig::unbounded());
    let dmax = exact.results.last().unwrap().dist;
    // The estimator path plus adversarial overrides: the under-estimates
    // force the pooled stage-two redistribution, where the uncounted
    // re-seeding discipline is what keeps the counters honest.
    let mut variants = vec![("estimated".to_string(), AmKdjOptions::default())];
    for factor in [0.0, 0.2, 0.7, 1.5] {
        variants.push((
            format!("{factor}×Dmax"),
            AmKdjOptions {
                edmax_override: Some(dmax * factor),
            },
        ));
    }
    for (name, opts) in variants {
        let seq = am_kdj(&r, &s, k, &JoinConfig::unbounded(), &opts);
        let par = par_am_kdj(&r, &s, k, &JoinConfig::unbounded(), &opts, 1);
        assert_eq!(seq.results, par.results, "{name}: results");
        assert_parity(&format!("am_kdj {name}"), &seq.stats, &par.stats, true);
        assert_eq!(par.stats.pairs_stolen, 0, "{name}: pairs_stolen");
    }
}

#[test]
fn stealing_disabled_steals_nothing() {
    let a = scatter(12, 1.618, 2.414, 0.1);
    let b = scatter(12, 1.732, 2.236, 0.73);
    let (r, s) = trees(&a, &b);
    let mut cfg = JoinConfig::unbounded();
    cfg.steal = false;
    for threads in [1, 4] {
        let exact = par_b_kdj(&r, &s, 90, &cfg, threads);
        assert_eq!(exact.stats.pairs_stolen, 0, "b_kdj × {threads}t");
        assert_eq!(exact.stats.steal_attempts, 0, "b_kdj × {threads}t");
        let agg = par_am_kdj(&r, &s, 90, &cfg, &AmKdjOptions::default(), threads);
        assert_eq!(agg.stats.pairs_stolen, 0, "am_kdj × {threads}t");
        assert_eq!(agg.stats.steal_attempts, 0, "am_kdj × {threads}t");
        let idj = par_am_idj(&r, &s, 90, &cfg, &AmIdjOptions::default(), threads);
        assert_eq!(idj.stats.pairs_stolen, 0, "am_idj × {threads}t");
        assert_eq!(idj.stats.steal_attempts, 0, "am_idj × {threads}t");
    }
}

#[test]
fn stealing_disabled_one_thread_also_equals_sequential() {
    // The static round-robin path must keep its own one-thread parity now
    // that it is no longer the default: both parallel modes replay the
    // sequential join when given the whole frontier.
    let a = scatter(12, 1.618, 2.414, 0.1);
    let b = scatter(12, 1.732, 2.236, 0.73);
    let (r, s) = trees(&a, &b);
    let mut cfg = JoinConfig::unbounded();
    cfg.steal = false;
    let k = 80;
    let seq = b_kdj(&r, &s, k, &JoinConfig::unbounded());
    let par = par_b_kdj(&r, &s, k, &cfg, 1);
    assert_eq!(seq.results, par.results, "rr b_kdj: results");
    assert_parity("rr b_kdj", &seq.stats, &par.stats, true);
    let seq = am_kdj(
        &r,
        &s,
        k,
        &JoinConfig::unbounded(),
        &AmKdjOptions::default(),
    );
    let par = par_am_kdj(&r, &s, k, &cfg, &AmKdjOptions::default(), 1);
    assert_eq!(seq.results, par.results, "rr am_kdj: results");
    assert_parity("rr am_kdj", &seq.stats, &par.stats, true);
}

#[test]
fn incremental_one_thread_equals_sequential_cursor() {
    let a = scatter(10, 1.618, 2.414, 0.2);
    let b = scatter(10, 1.732, 2.236, 0.51);
    let (r, s) = trees(&a, &b);
    let opts = AmIdjOptions {
        initial_k: 16,
        growth: 2.0,
        ..AmIdjOptions::default()
    };
    for take in [1, 40, 200] {
        let mut cursor = AmIdj::new(&r, &s, &JoinConfig::unbounded(), opts.clone());
        let mut seq_results = Vec::new();
        while seq_results.len() < take {
            match cursor.next() {
                Some(p) => seq_results.push(p),
                None => break,
            }
        }
        let seq = cursor.stats();
        let par = par_am_idj(&r, &s, take, &JoinConfig::unbounded(), &opts, 1);
        assert_eq!(seq_results, par.results, "take={take}: results");
        assert_parity(&format!("am_idj take={take}"), &seq, &par.stats, false);
    }
}

#[test]
fn multi_thread_workers_sum_to_all_work() {
    // Across thread counts the totals cannot be compared exactly (the
    // shared bound changes how much work each worker does), but the
    // accounting identities must hold: every real distance was preceded
    // by an axis distance, and all per-stage expansion counters are
    // consistent with the recorded stage count.
    let a = scatter(12, 1.618, 2.414, 0.3);
    let b = scatter(12, 1.732, 2.236, 0.19);
    let (r, s) = trees(&a, &b);
    for threads in [2, 4, 8] {
        let out = par_am_kdj(
            &r,
            &s,
            60,
            &JoinConfig::unbounded(),
            &AmKdjOptions {
                edmax_override: Some(0.5),
            },
            threads,
        );
        let st = out.stats;
        assert_eq!(st.results, 60, "threads={threads}");
        assert!(st.axis_dist >= st.real_dist, "threads={threads}");
        assert!(st.stage1_expansions > 0, "threads={threads}");
        if st.stages == 1 {
            assert_eq!(st.stage2_expansions, 0, "threads={threads}");
        }
    }
}
