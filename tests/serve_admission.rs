//! Model-checking the serve-mode admission controller.
//!
//! [`AdmissionCore`] is a pure deterministic state machine — no clocks,
//! no threads — so its invariants can be checked exhaustively against a
//! shadow model under random admit/complete sequences:
//!
//! * **budget**: `in_use ≤ budget` after every transition;
//! * **FIFO**: completions grant waiting tickets strictly in queue
//!   order — a later request never overtakes an earlier one;
//! * **liveness**: when everything admitted completes, every queued
//!   request has been granted and the controller drains to empty (no
//!   deadlock, no lost grant) — in a bounded number of steps;
//! * **load shedding**: an oversized request (cost > budget) and a
//!   request arriving at a full waiting line are rejected, never
//!   queued.

use std::collections::VecDeque;

use amdj_core::serve::admission::{AdmissionCore, Admit, Ticket};
use proptest::prelude::*;

/// One scripted step: `Request(cost)` or `Complete(index)` (an index
/// into the currently running set, taken modulo its size).
#[derive(Clone, Debug)]
enum Step {
    Request(u64),
    Complete(usize),
}

fn arb_steps() -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec(
        prop_oneof![
            (1u64..40).prop_map(Step::Request),
            (0usize..16).prop_map(Step::Complete),
        ],
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: amdj_tests::proptest_cases(96),
        .. ProptestConfig::default()
    })]

    #[test]
    fn admission_model_invariants(
        budget in 4u64..32,
        max_waiting in 0usize..8,
        steps in arb_steps(),
    ) {
        let mut core = AdmissionCore::new(budget, max_waiting);
        // The shadow model: running (ticket, cost) pairs, the expected
        // waiting line, and the expected rejection count.
        let mut running: Vec<(Ticket, u64)> = Vec::new();
        let mut waiting: VecDeque<(Ticket, u64)> = VecDeque::new();
        let mut next_ticket: Ticket = 0;
        let mut in_use: u64 = 0;
        let mut rejections: u64 = 0;

        let drive = |core: &mut AdmissionCore,
                         running: &mut Vec<(Ticket, u64)>,
                         waiting: &mut VecDeque<(Ticket, u64)>,
                         in_use: &mut u64,
                         idx: usize|
         -> Result<(), TestCaseError> {
            // Complete the running query at `idx`; the controller must
            // grant exactly the FIFO prefix of waiters that now fits.
            let (_, cost) = running.remove(idx % running.len());
            *in_use -= cost;
            let granted = core.complete(cost);
            for ticket in granted {
                let Some(&(expect, wcost)) = waiting.front() else {
                    return Err(TestCaseError::fail("granted with an empty line"));
                };
                prop_assert_eq!(ticket, expect, "grants must be FIFO");
                prop_assert!(
                    *in_use + wcost <= core.budget(),
                    "grant must fit the budget"
                );
                waiting.pop_front();
                *in_use += wcost;
                running.push((ticket, wcost));
            }
            // Nothing grantable may be left stranded (no lost wakeup).
            if let Some(&(_, wcost)) = waiting.front() {
                prop_assert!(
                    *in_use + wcost > core.budget(),
                    "front waiter fits but was not granted"
                );
            }
            Ok(())
        };

        for step in steps {
            match step {
                Step::Request(cost) => {
                    let got = core.request(cost);
                    if cost > budget {
                        prop_assert_eq!(got, Admit::Rejected, "oversized must be rejected");
                        rejections += 1;
                    } else if waiting.is_empty() && in_use + cost <= budget {
                        prop_assert_eq!(got, Admit::Admitted(next_ticket));
                        running.push((next_ticket, cost));
                        in_use += cost;
                        next_ticket += 1;
                    } else if waiting.len() < max_waiting {
                        prop_assert_eq!(got, Admit::Queued(next_ticket));
                        waiting.push_back((next_ticket, cost));
                        next_ticket += 1;
                    } else {
                        prop_assert_eq!(got, Admit::Rejected, "full line must shed load");
                        rejections += 1;
                    }
                }
                Step::Complete(idx) => {
                    if !running.is_empty() {
                        drive(&mut core, &mut running, &mut waiting, &mut in_use, idx)?;
                    }
                }
            }
            prop_assert_eq!(core.in_use(), in_use, "in_use tracks the model");
            prop_assert!(core.in_use() <= budget, "budget invariant");
            prop_assert_eq!(core.waiting_len(), waiting.len(), "line tracks the model");
            prop_assert_eq!(core.rejections(), rejections, "rejections track the model");
        }

        // Liveness: completing everything admitted drains the line —
        // every queued request is eventually granted, in bounded steps
        // (each completion strictly shrinks running+waiting).
        let bound = running.len() + waiting.len() + 1;
        let mut steps_taken = 0usize;
        while !running.is_empty() {
            drive(&mut core, &mut running, &mut waiting, &mut in_use, 0)?;
            steps_taken += 1;
            prop_assert!(steps_taken <= bound, "drain must terminate");
        }
        prop_assert_eq!(core.in_use(), 0, "everything released");
        prop_assert_eq!(core.waiting_len(), 0, "no waiter stranded after drain");
        prop_assert!(waiting.is_empty(), "model agrees the line drained");
    }
}
