//! The whole stack is const-generic over the dimension; exercise it end
//! to end in 3-D (the paper's algorithms are presented in 2-D but nothing
//! in them is 2-D-specific).

use amdj_core::{am_kdj, b_kdj, bruteforce, hs_kdj, AmIdj, AmIdjOptions, AmKdjOptions, JoinConfig};
use amdj_geom::{Point, Rect};
use amdj_rtree::{RTree, RTreeParams};

fn lattice(n: usize, offset: f64) -> Vec<(Rect<3>, u64)> {
    let mut v = Vec::new();
    let mut id = 0;
    for x in 0..n {
        for y in 0..n {
            for z in 0..n {
                let p = Point::new([
                    x as f64 + offset,
                    y as f64 + offset * 0.5,
                    z as f64 + offset * 0.25,
                ]);
                v.push((Rect::from_point(p), id));
                id += 1;
            }
        }
    }
    v
}

#[test]
fn three_dimensional_kdj_algorithms_agree_with_brute_force() {
    let a = lattice(7, 0.0);
    let b = lattice(7, 0.37);
    let k = 120;
    let want = bruteforce::k_closest_pairs(&a, &b, k);
    let r = RTree::bulk_load(RTreeParams::for_tests(), a.clone());
    let s = RTree::bulk_load(RTreeParams::for_tests(), b.clone());

    let hs = hs_kdj(&r, &s, k, &JoinConfig::unbounded());
    let bk = b_kdj(&r, &s, k, &JoinConfig::unbounded());
    let am = am_kdj(
        &r,
        &s,
        k,
        &JoinConfig::unbounded(),
        &AmKdjOptions::default(),
    );
    for (label, out) in [("HS", &hs), ("B", &bk), ("AM", &am)] {
        assert_eq!(out.results.len(), k, "{label}");
        for (i, (g, w)) in out.results.iter().zip(want.iter()).enumerate() {
            assert!((g.dist - w.dist).abs() < 1e-9, "{label} rank {i}");
        }
    }
}

#[test]
fn three_dimensional_incremental_stream() {
    let a = lattice(6, 0.0);
    let b = lattice(6, 0.41);
    let want = bruteforce::k_closest_pairs(&a, &b, 200);
    let r = RTree::bulk_load(RTreeParams::for_tests(), a);
    let s = RTree::bulk_load(RTreeParams::for_tests(), b);
    let mut cursor = AmIdj::new(&r, &s, &JoinConfig::unbounded(), AmIdjOptions::default());
    for (i, w) in want.iter().enumerate() {
        let g = cursor.next().unwrap_or_else(|| panic!("exhausted at {i}"));
        assert!((g.dist - w.dist).abs() < 1e-9, "rank {i}");
    }
}

#[test]
fn three_dimensional_tree_lifecycle() {
    let items = lattice(8, 0.0);
    let mut t = RTree::bulk_load(RTreeParams::for_tests(), items.clone());
    t.validate().expect("valid 3-D bulk load");
    for (mbr, id) in items.iter().take(200) {
        assert!(t.delete(mbr, *id));
    }
    t.validate().expect("valid after 3-D deletions");
    for i in 0..100u64 {
        t.insert(
            Rect::from_point(Point::new([0.5, 0.5, i as f64 * 0.01])),
            10_000 + i,
        );
    }
    t.validate().expect("valid after 3-D inserts");
    assert_eq!(t.len(), 512 - 200 + 100);
}
