//! Concurrency proofs for the serve-mode [`Server`]: N concurrent mixed
//! KDJ/IDJ queries over one shared tree pair must each return the exact
//! result stream its serial one-shot equivalent returns — bit for bit —
//! and the per-query buffer attribution must account for every fetch.
//!
//! The attribution invariant is the sharp one: each query's
//! `buffer_hits`/`buffer_misses` combine the coordinating handler
//! thread's deltas (the engine's `Baseline`), its workers' deltas
//! (worker spans), and — for cursors — every suspended episode's stats
//! (which ride `Checkpointed::Suspended`). Summing the per-query rows
//! must therefore reproduce the shared buffer's global counter deltas
//! exactly: nothing double-counted, nothing dropped.

use amdj_core::serve::{codec::QuerySpec, ServeError, ServeOptions, Server};
use amdj_core::{
    am_kdj, b_kdj, par_am_kdj, par_b_kdj, AmIdj, AmIdjOptions, AmKdjOptions, JoinConfig, ResultPair,
};
use amdj_datagen::{clustered_points, uniform_points, unit_universe};
use amdj_rtree::RTree;
use amdj_tests::build_trees;

/// One concurrent query of the mixed workload.
enum Kind {
    Kdj { k: usize, spec: QuerySpec },
    Idj { take: usize, batch: usize },
}

/// The deterministic mixed workload: a cycle of aggressive sequential
/// KDJ, exact 2-thread KDJ, pull-driven IDJ cursors, and aggressive
/// 2-thread KDJ, with varying k.
fn cells(n_queries: usize, k: usize) -> Vec<(String, Kind)> {
    (0..n_queries)
        .map(|i| {
            let kind = match i % 4 {
                0 => Kind::Kdj {
                    k: (k / (1 + i % 3)).max(1),
                    spec: QuerySpec::default(),
                },
                1 => Kind::Kdj {
                    k: (k / 2).max(1),
                    spec: QuerySpec {
                        aggressive: false,
                        threads: 2,
                        ..QuerySpec::default()
                    },
                },
                2 => Kind::Idj {
                    take: k.max(3),
                    batch: (k / 3).max(1),
                },
                _ => Kind::Kdj {
                    k: (k / 4).max(1),
                    spec: QuerySpec {
                        threads: 2,
                        ..QuerySpec::default()
                    },
                },
            };
            (format!("q{i:02}"), kind)
        })
        .collect()
}

/// The serial one-shot equivalent of one query, through the ordinary
/// library entry points.
fn serial(r: &RTree<2>, s: &RTree<2>, cfg: &JoinConfig, kind: &Kind) -> Vec<ResultPair> {
    match kind {
        Kind::Kdj { k, spec } => {
            let mut c = cfg.clone();
            if let Some(steal) = spec.steal {
                c.steal = steal;
            }
            c.partitions = (spec.partitions > 1).then_some(spec.partitions as usize);
            let t = (spec.threads as usize).max(1);
            match (spec.aggressive, t > 1) {
                (true, false) => am_kdj(r, s, *k, &c, &AmKdjOptions::default()).results,
                (true, true) => par_am_kdj(r, s, *k, &c, &AmKdjOptions::default(), t).results,
                (false, false) => b_kdj(r, s, *k, &c).results,
                (false, true) => par_b_kdj(r, s, *k, &c, t).results,
            }
        }
        Kind::Idj { take, .. } => {
            let mut cursor = AmIdj::new(r, s, cfg, AmIdjOptions::default());
            let mut out = Vec::with_capacity(*take);
            while out.len() < *take {
                match cursor.next() {
                    Some(p) => out.push(p),
                    None => break,
                }
            }
            out
        }
    }
}

fn assert_identical(label: &str, want: &[ResultPair], got: &[ResultPair]) {
    assert_eq!(want.len(), got.len(), "{label}: result count");
    for (i, (a, b)) in want.iter().zip(got.iter()).enumerate() {
        assert_eq!(
            a.dist.to_bits(),
            b.dist.to_bits(),
            "{label}: rank {i} distance"
        );
        assert_eq!((a.r, a.s), (b.r, b.s), "{label}: rank {i} ids");
    }
}

/// Runs `n_queries` concurrent mixed queries through one server and
/// checks bit-identity against serial plus the counter-sum invariant.
fn run_mixed(n_queries: usize) {
    let a = uniform_points(600, unit_universe(), 11);
    let b = clustered_points(600, 16, 0.02, unit_universe(), 12);
    let (r, s) = build_trees(&a, &b);
    let cfg = JoinConfig::default();
    let cells = cells(n_queries, 60);
    // Serial expectations first: their buffer traffic must not land in
    // the window the global-counter delta is measured over.
    let expected: Vec<Vec<ResultPair>> = cells
        .iter()
        .map(|(_, kind)| serial(&r, &s, &cfg, kind))
        .collect();
    let hits_before = r.buffer_hits() + s.buffer_hits();
    let misses_before = r.buffer_misses() + s.buffer_misses();
    let server = Server::new(
        &r,
        &s,
        ServeOptions {
            base_config: cfg.clone(),
            ..ServeOptions::default()
        },
    );
    let measured: Vec<Vec<ResultPair>> = std::thread::scope(|scope| {
        let handles: Vec<_> = cells
            .iter()
            .map(|(id, kind)| {
                let server = &server;
                scope.spawn(move || match kind {
                    Kind::Kdj { k, spec } => server.kdj(id, *k, spec).expect("admitted").0.results,
                    Kind::Idj { take, batch } => {
                        server
                            .idj_open(id, *take, QuerySpec::default())
                            .expect("cursor opens");
                        let mut out = Vec::with_capacity(*take);
                        loop {
                            let (chunk, done, _) = server.idj_pull(id, *batch).expect("pull");
                            out.extend(chunk);
                            if done || out.len() >= *take {
                                break;
                            }
                        }
                        server.idj_close(id).expect("cursor closes");
                        out
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("query panicked"))
            .collect()
    });
    for (((id, _), got), want) in cells.iter().zip(&measured).zip(&expected) {
        assert_identical(id, want, got);
    }
    // The counter-sum invariant: per-query attribution reproduces the
    // shared buffer's global deltas exactly.
    let reports = server.query_reports();
    assert_eq!(reports.len(), cells.len(), "one report per query");
    let sum_hits: u64 = reports.iter().map(|rep| rep.buffer_hits).sum();
    let sum_misses: u64 = reports.iter().map(|rep| rep.buffer_misses).sum();
    let global_hits = r.buffer_hits() + s.buffer_hits() - hits_before;
    let global_misses = r.buffer_misses() + s.buffer_misses() - misses_before;
    assert_eq!(
        sum_hits, global_hits,
        "per-query hits sum to the global delta"
    );
    assert_eq!(
        sum_misses, global_misses,
        "per-query misses sum to the global delta"
    );
    // Every report delivered what its query's serial equivalent did.
    for ((id, _), want) in cells.iter().zip(&expected) {
        let rep = reports
            .iter()
            .find(|rep| rep.id == *id)
            .expect("report exists");
        assert_eq!(rep.results, want.len() as u64, "{id}: reported results");
    }
}

#[test]
fn two_concurrent_queries_bit_identical_and_attributed() {
    run_mixed(2);
}

#[test]
fn eight_concurrent_queries_bit_identical_and_attributed() {
    run_mixed(8);
}

#[test]
fn thirty_two_concurrent_queries_bit_identical_and_attributed() {
    run_mixed(32);
}

/// Per-query `threads`/`partitions` come straight off the wire as
/// arbitrary u64s; the engine spawns exactly `threads` OS threads, so
/// out-of-range values must be structured rejections at every
/// join-bearing entry point — never a million `thread::spawn`s.
#[test]
fn wire_thread_and_partition_caps_are_enforced() {
    let a = uniform_points(200, unit_universe(), 31);
    let b = clustered_points(200, 8, 0.02, unit_universe(), 32);
    let (r, s) = build_trees(&a, &b);
    let server = Server::new(&r, &s, ServeOptions::default());
    let max_threads = server.options().max_threads;
    let max_partitions = server.options().max_partitions;

    let over_threads = QuerySpec {
        threads: max_threads + 1,
        ..QuerySpec::default()
    };
    let err = server.kdj("t", 5, &over_threads).expect_err("over cap");
    assert!(
        matches!(
            err,
            ServeError::SpecOutOfRange {
                knob: "threads",
                ..
            }
        ),
        "kdj rejects over-cap threads, got {err}"
    );
    let err = server
        .idj_open("t", 5, over_threads.clone())
        .expect_err("over cap");
    assert!(
        matches!(
            err,
            ServeError::SpecOutOfRange {
                knob: "threads",
                ..
            }
        ),
        "idj_open rejects over-cap threads, got {err}"
    );
    let err = server
        .idj_resume("t", &[], 0, over_threads)
        .expect_err("over cap");
    assert!(
        matches!(
            err,
            ServeError::SpecOutOfRange {
                knob: "threads",
                ..
            }
        ),
        "idj_resume rejects the spec before touching the snapshot, got {err}"
    );

    let over_parts = QuerySpec {
        partitions: max_partitions + 1,
        ..QuerySpec::default()
    };
    let err = server.kdj("p", 5, &over_parts).expect_err("over cap");
    assert!(
        matches!(
            err,
            ServeError::SpecOutOfRange {
                knob: "partitions",
                ..
            }
        ),
        "kdj rejects over-cap partitions, got {err}"
    );

    // Through the wire seam the rejection is a structured error line,
    // not a panic that would abort the serve thread scope.
    let line = format!(
        "{{\"op\":\"kdj\",\"id\":\"w\",\"k\":5,\"threads\":{}}}",
        u64::MAX
    );
    let (resp, stop) = server.handle_line(line.as_bytes());
    assert!(!stop);
    assert!(
        resp.encode().contains("\"ok\":false"),
        "wire rejection is structured: {}",
        resp.encode()
    );

    // In-range specs still run.
    server
        .kdj(
            "ok",
            5,
            &QuerySpec {
                threads: 2,
                partitions: 2,
                ..QuerySpec::default()
            },
        )
        .expect("in-range spec runs");
}

/// A reused kdj id must accumulate its queries' buffer deltas in its
/// report row; replacing them would break the rows-sum-to-global-
/// deltas invariant the serve stats advertise.
#[test]
fn reused_kdj_id_accumulates_attribution() {
    let a = uniform_points(300, unit_universe(), 41);
    let b = clustered_points(300, 8, 0.02, unit_universe(), 42);
    let (r, s) = build_trees(&a, &b);
    let server = Server::new(&r, &s, ServeOptions::default());
    let (_, rep1) = server
        .kdj("dup", 20, &QuerySpec::default())
        .expect("first query");
    let (_, rep2) = server
        .kdj("dup", 35, &QuerySpec::default())
        .expect("second query");
    let reports = server.query_reports();
    assert_eq!(reports.len(), 1, "one row per id+op");
    let row = &reports[0];
    assert_eq!(row.buffer_hits, rep1.buffer_hits + rep2.buffer_hits);
    assert_eq!(row.buffer_misses, rep1.buffer_misses + rep2.buffer_misses);
    assert_eq!(row.results, rep1.results + rep2.results);
    assert_eq!(
        row.queue_wait_ns,
        rep1.queue_wait_ns + rep2.queue_wait_ns,
        "waits are per-request deltas and sum"
    );
}
