//! Concurrency proofs for the serve-mode [`Server`]: N concurrent mixed
//! KDJ/IDJ queries over one shared tree pair must each return the exact
//! result stream its serial one-shot equivalent returns — bit for bit —
//! and the per-query buffer attribution must account for every fetch.
//!
//! The attribution invariant is the sharp one: each query's
//! `buffer_hits`/`buffer_misses` combine the coordinating handler
//! thread's deltas (the engine's `Baseline`), its workers' deltas
//! (worker spans), and — for cursors — every suspended episode's stats
//! (which ride `Checkpointed::Suspended`). Summing the per-query rows
//! must therefore reproduce the shared buffer's global counter deltas
//! exactly: nothing double-counted, nothing dropped.

use amdj_core::serve::{
    codec::{QuerySpec, Response},
    ServeError, ServeOptions, Server,
};
use amdj_core::{
    am_kdj, b_kdj, par_am_kdj, par_b_kdj, AmIdj, AmIdjOptions, AmKdjOptions, JoinConfig, ResultPair,
};
use amdj_datagen::{clustered_points, uniform_points, unit_universe};
use amdj_rtree::RTree;
use amdj_tests::build_trees;

/// One concurrent query of the mixed workload.
enum Kind {
    Kdj { k: usize, spec: QuerySpec },
    Idj { take: usize, batch: usize },
}

/// The deterministic mixed workload: a cycle of aggressive sequential
/// KDJ, exact 2-thread KDJ, pull-driven IDJ cursors, and aggressive
/// 2-thread KDJ, with varying k.
fn cells(n_queries: usize, k: usize) -> Vec<(String, Kind)> {
    (0..n_queries)
        .map(|i| {
            let kind = match i % 4 {
                0 => Kind::Kdj {
                    k: (k / (1 + i % 3)).max(1),
                    spec: QuerySpec::default(),
                },
                1 => Kind::Kdj {
                    k: (k / 2).max(1),
                    spec: QuerySpec {
                        aggressive: false,
                        threads: 2,
                        ..QuerySpec::default()
                    },
                },
                2 => Kind::Idj {
                    take: k.max(3),
                    batch: (k / 3).max(1),
                },
                _ => Kind::Kdj {
                    k: (k / 4).max(1),
                    spec: QuerySpec {
                        threads: 2,
                        ..QuerySpec::default()
                    },
                },
            };
            (format!("q{i:02}"), kind)
        })
        .collect()
}

/// The serial one-shot equivalent of one query, through the ordinary
/// library entry points.
fn serial(r: &RTree<2>, s: &RTree<2>, cfg: &JoinConfig, kind: &Kind) -> Vec<ResultPair> {
    match kind {
        Kind::Kdj { k, spec } => {
            let mut c = cfg.clone();
            if let Some(steal) = spec.steal {
                c.steal = steal;
            }
            // Mirror the server's `config_for`: 0 keeps the base
            // config's partitioning, nonzero overrides it.
            if spec.partitions > 0 {
                c.partitions = (spec.partitions > 1).then_some(spec.partitions as usize);
            }
            let t = (spec.threads as usize).max(1);
            match (spec.aggressive, t > 1) {
                (true, false) => am_kdj(r, s, *k, &c, &AmKdjOptions::default()).results,
                (true, true) => par_am_kdj(r, s, *k, &c, &AmKdjOptions::default(), t).results,
                (false, false) => b_kdj(r, s, *k, &c).results,
                (false, true) => par_b_kdj(r, s, *k, &c, t).results,
            }
        }
        Kind::Idj { take, .. } => {
            let mut cursor = AmIdj::new(r, s, cfg, AmIdjOptions::default());
            let mut out = Vec::with_capacity(*take);
            while out.len() < *take {
                match cursor.next() {
                    Some(p) => out.push(p),
                    None => break,
                }
            }
            out
        }
    }
}

fn assert_identical(label: &str, want: &[ResultPair], got: &[ResultPair]) {
    assert_eq!(want.len(), got.len(), "{label}: result count");
    for (i, (a, b)) in want.iter().zip(got.iter()).enumerate() {
        assert_eq!(
            a.dist.to_bits(),
            b.dist.to_bits(),
            "{label}: rank {i} distance"
        );
        assert_eq!((a.r, a.s), (b.r, b.s), "{label}: rank {i} ids");
    }
}

/// Runs `n_queries` concurrent mixed queries through one server and
/// checks bit-identity against serial plus the counter-sum invariant.
fn run_mixed(n_queries: usize) {
    let a = uniform_points(600, unit_universe(), 11);
    let b = clustered_points(600, 16, 0.02, unit_universe(), 12);
    let (r, s) = build_trees(&a, &b);
    let cfg = JoinConfig::default();
    let cells = cells(n_queries, 60);
    // Serial expectations first: their buffer traffic must not land in
    // the window the global-counter delta is measured over.
    let expected: Vec<Vec<ResultPair>> = cells
        .iter()
        .map(|(_, kind)| serial(&r, &s, &cfg, kind))
        .collect();
    let hits_before = r.buffer_hits() + s.buffer_hits();
    let misses_before = r.buffer_misses() + s.buffer_misses();
    let evictions_before = r.buffer_evictions() + s.buffer_evictions();
    let server = Server::new(
        &r,
        &s,
        ServeOptions {
            base_config: cfg.clone(),
            ..ServeOptions::default()
        },
    );
    let measured: Vec<Vec<ResultPair>> = std::thread::scope(|scope| {
        let handles: Vec<_> = cells
            .iter()
            .map(|(id, kind)| {
                let server = &server;
                scope.spawn(move || match kind {
                    Kind::Kdj { k, spec } => server.kdj(id, *k, spec).expect("admitted").0.results,
                    Kind::Idj { take, batch } => {
                        server
                            .idj_open(id, *take, QuerySpec::default())
                            .expect("cursor opens");
                        let mut out = Vec::with_capacity(*take);
                        loop {
                            let pull = server.idj_pull(id, *batch).expect("pull");
                            out.extend(pull.results);
                            if pull.done || out.len() >= *take {
                                break;
                            }
                        }
                        server.idj_close(id).expect("cursor closes");
                        out
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("query panicked"))
            .collect()
    });
    for (((id, _), got), want) in cells.iter().zip(&measured).zip(&expected) {
        assert_identical(id, want, got);
    }
    // The counter-sum invariant: per-query attribution reproduces the
    // shared buffer's global deltas exactly.
    let reports = server.query_reports();
    assert_eq!(reports.len(), cells.len(), "one report per query");
    let sum_hits: u64 = reports.iter().map(|rep| rep.buffer_hits).sum();
    let sum_misses: u64 = reports.iter().map(|rep| rep.buffer_misses).sum();
    let sum_evictions: u64 = reports.iter().map(|rep| rep.buffer_evictions).sum();
    let global_hits = r.buffer_hits() + s.buffer_hits() - hits_before;
    let global_misses = r.buffer_misses() + s.buffer_misses() - misses_before;
    let global_evictions = r.buffer_evictions() + s.buffer_evictions() - evictions_before;
    assert_eq!(
        sum_hits, global_hits,
        "per-query hits sum to the global delta"
    );
    assert_eq!(
        sum_misses, global_misses,
        "per-query misses sum to the global delta"
    );
    assert_eq!(
        sum_evictions, global_evictions,
        "per-query evictions sum to the global delta"
    );
    // Every report delivered what its query's serial equivalent did.
    for ((id, _), want) in cells.iter().zip(&expected) {
        let rep = reports
            .iter()
            .find(|rep| rep.id == *id)
            .expect("report exists");
        assert_eq!(rep.results, want.len() as u64, "{id}: reported results");
    }
}

#[test]
fn two_concurrent_queries_bit_identical_and_attributed() {
    run_mixed(2);
}

#[test]
fn eight_concurrent_queries_bit_identical_and_attributed() {
    run_mixed(8);
}

#[test]
fn thirty_two_concurrent_queries_bit_identical_and_attributed() {
    run_mixed(32);
}

/// Per-query `threads`/`partitions` come straight off the wire as
/// arbitrary u64s; the engine spawns exactly `threads` OS threads, so
/// out-of-range values must be structured rejections at every
/// join-bearing entry point — never a million `thread::spawn`s.
#[test]
fn wire_thread_and_partition_caps_are_enforced() {
    let a = uniform_points(200, unit_universe(), 31);
    let b = clustered_points(200, 8, 0.02, unit_universe(), 32);
    let (r, s) = build_trees(&a, &b);
    let server = Server::new(&r, &s, ServeOptions::default());
    let max_threads = server.options().max_threads;
    let max_partitions = server.options().max_partitions;

    let over_threads = QuerySpec {
        threads: max_threads + 1,
        ..QuerySpec::default()
    };
    let err = server.kdj("t", 5, &over_threads).expect_err("over cap");
    assert!(
        matches!(
            err,
            ServeError::SpecOutOfRange {
                knob: "threads",
                ..
            }
        ),
        "kdj rejects over-cap threads, got {err}"
    );
    let err = server
        .idj_open("t", 5, over_threads.clone())
        .expect_err("over cap");
    assert!(
        matches!(
            err,
            ServeError::SpecOutOfRange {
                knob: "threads",
                ..
            }
        ),
        "idj_open rejects over-cap threads, got {err}"
    );
    let err = server
        .idj_resume("t", &[], 0, over_threads)
        .expect_err("over cap");
    assert!(
        matches!(
            err,
            ServeError::SpecOutOfRange {
                knob: "threads",
                ..
            }
        ),
        "idj_resume rejects the spec before touching the snapshot, got {err}"
    );

    let over_parts = QuerySpec {
        partitions: max_partitions + 1,
        ..QuerySpec::default()
    };
    let err = server.kdj("p", 5, &over_parts).expect_err("over cap");
    assert!(
        matches!(
            err,
            ServeError::SpecOutOfRange {
                knob: "partitions",
                ..
            }
        ),
        "kdj rejects over-cap partitions, got {err}"
    );

    // Through the wire seam the rejection is a structured error line,
    // not a panic that would abort the serve thread scope.
    let line = format!(
        "{{\"op\":\"kdj\",\"id\":\"w\",\"k\":5,\"threads\":{}}}",
        u64::MAX
    );
    let (resp, stop) = server.handle_line(line.as_bytes());
    assert!(!stop);
    assert!(
        resp.encode().contains("\"ok\":false"),
        "wire rejection is structured: {}",
        resp.encode()
    );

    // In-range specs still run.
    server
        .kdj(
            "ok",
            5,
            &QuerySpec {
                threads: 2,
                partitions: 2,
                ..QuerySpec::default()
            },
        )
        .expect("in-range spec runs");
}

/// A reused kdj id must accumulate its queries' buffer deltas in its
/// report row; replacing them would break the rows-sum-to-global-
/// deltas invariant the serve stats advertise.
#[test]
fn reused_kdj_id_accumulates_attribution() {
    let a = uniform_points(300, unit_universe(), 41);
    let b = clustered_points(300, 8, 0.02, unit_universe(), 42);
    let (r, s) = build_trees(&a, &b);
    let server = Server::new(&r, &s, ServeOptions::default());
    let (_, rep1) = server
        .kdj("dup", 20, &QuerySpec::default())
        .expect("first query");
    let (_, rep2) = server
        .kdj("dup", 35, &QuerySpec::default())
        .expect("second query");
    let reports = server.query_reports();
    assert_eq!(reports.len(), 1, "one row per id+op");
    let row = &reports[0];
    assert_eq!(row.buffer_hits, rep1.buffer_hits + rep2.buffer_hits);
    assert_eq!(row.buffer_misses, rep1.buffer_misses + rep2.buffer_misses);
    assert_eq!(row.results, rep1.results + rep2.results);
    assert_eq!(
        row.queue_wait_ns,
        rep1.queue_wait_ns + rep2.queue_wait_ns,
        "waits are per-request deltas and sum"
    );
}

/// Pulls a u64 field off an encoded wire line.
fn wire_field_u64(line: &str, name: &str) -> u64 {
    let pat = format!("\"{name}\":");
    let at = line
        .find(&pat)
        .unwrap_or_else(|| panic!("no {name} in {line}"));
    let rest = &line[at + pat.len()..];
    let end = rest.find([',', '}']).expect("field terminated");
    rest[..end].parse().expect("u64 field")
}

/// Regression: `idj_pull` wire responses used to hard-code
/// `queue_wait_ns: 0`, hiding real admission queueing from clients
/// even while the per-query stats log recorded it. A pull that
/// demonstrably waited for the budget must report a nonzero cumulative
/// wait on its own wire response.
#[test]
fn contended_wire_pull_reports_nonzero_queue_wait() {
    let a = uniform_points(600, unit_universe(), 51);
    let b = clustered_points(600, 16, 0.02, unit_universe(), 52);
    let (r, s) = build_trees(&a, &b);
    let cfg = JoinConfig::default();
    // One admission slot and a waiting line: while any query executes,
    // a pull must queue.
    let server = Server::new(
        &r,
        &s,
        ServeOptions {
            mem_budget_bytes: cfg.queue_mem_bytes as u64,
            max_waiting: 8,
            base_config: cfg.clone(),
            ..ServeOptions::default()
        },
    );
    server
        .idj_open("c", 60, QuerySpec::default())
        .expect("opens");
    // The cursor's wire wait is cumulative across its pulls, so one
    // contended round suffices; rounds guard against the holder
    // finishing before the pull even asks for admission.
    for round in 0..10 {
        let waited = std::thread::scope(|scope| {
            let server = &server;
            let holder = scope.spawn(move || {
                let id = format!("holder{round}");
                server
                    .kdj(&id, 200, &QuerySpec::default())
                    .expect("holder admitted");
            });
            // Only pull once the holder demonstrably occupies the slot.
            loop {
                let Response::Stats { mem_in_use, .. } = server.stats() else {
                    panic!("stats() returns Stats");
                };
                if mem_in_use > 0 {
                    break;
                }
                if holder.is_finished() {
                    return 0; // raced past us: retry the round
                }
                std::thread::yield_now();
            }
            let (resp, stop) = server.handle_line(b"{\"op\":\"idj_pull\",\"id\":\"c\",\"n\":3}");
            assert!(!stop);
            let line = resp.encode();
            assert!(line.contains("\"ok\":true"), "pull succeeded: {line}");
            wire_field_u64(&line, "queue_wait_ns")
        });
        if waited > 0 {
            return;
        }
    }
    panic!("ten contended pulls never reported a nonzero queue_wait_ns on the wire");
}

/// Regression: `config_for` used to overwrite the server's configured
/// `base_config.partitions` with the wire default (0) whenever a
/// request omitted the knob, silently demoting a partition-configured
/// server to monolithic plans. A spec-silent query must inherit the
/// base config's partitioning; explicit wire values must still
/// override in both directions.
#[test]
fn wire_default_partitions_preserve_partitioned_base_config() {
    let a = uniform_points(400, unit_universe(), 61);
    let b = clustered_points(400, 8, 0.02, unit_universe(), 62);
    let (r, s) = build_trees(&a, &b);
    let cfg = JoinConfig {
        partitions: Some(2),
        ..JoinConfig::default()
    };
    let server = Server::new(
        &r,
        &s,
        ServeOptions {
            base_config: cfg.clone(),
            ..ServeOptions::default()
        },
    );
    // A request that says nothing about partitions (the codec default)
    // must run the base config's partitioned plan.
    let (out, _) = server
        .kdj("silent", 30, &QuerySpec::default())
        .expect("spec-silent query runs");
    assert!(
        out.stats.partition_pairs_total > 0,
        "the server-configured partitioned plan survived wire defaults"
    );
    // An explicit `partitions: 1` is a real opt-out into monolithic…
    let (out, _) = server
        .kdj(
            "mono",
            30,
            &QuerySpec {
                partitions: 1,
                ..QuerySpec::default()
            },
        )
        .expect("explicit monolithic query runs");
    assert_eq!(
        out.stats.partition_pairs_total, 0,
        "explicit partitions=1 overrides the partitioned base config"
    );
    // …and an explicit fan-out overrides the base config's own.
    let (out, _) = server
        .kdj(
            "wide",
            30,
            &QuerySpec {
                partitions: 3,
                ..QuerySpec::default()
            },
        )
        .expect("explicit partitioned query runs");
    assert!(
        out.stats.partition_pairs_total > 0,
        "explicit partitions=3 repartitions"
    );
}
