//! Concurrency proofs for the serve-mode [`Server`]: N concurrent mixed
//! KDJ/IDJ queries over one shared tree pair must each return the exact
//! result stream its serial one-shot equivalent returns — bit for bit —
//! and the per-query buffer attribution must account for every fetch.
//!
//! The attribution invariant is the sharp one: each query's
//! `buffer_hits`/`buffer_misses` combine the coordinating handler
//! thread's deltas (the engine's `Baseline`), its workers' deltas
//! (worker spans), and — for cursors — every suspended episode's stats
//! (which ride `Checkpointed::Suspended`). Summing the per-query rows
//! must therefore reproduce the shared buffer's global counter deltas
//! exactly: nothing double-counted, nothing dropped.

use amdj_core::serve::{codec::QuerySpec, ServeOptions, Server};
use amdj_core::{
    am_kdj, b_kdj, par_am_kdj, par_b_kdj, AmIdj, AmIdjOptions, AmKdjOptions, JoinConfig, ResultPair,
};
use amdj_datagen::{clustered_points, uniform_points, unit_universe};
use amdj_rtree::RTree;
use amdj_tests::build_trees;

/// One concurrent query of the mixed workload.
enum Kind {
    Kdj { k: usize, spec: QuerySpec },
    Idj { take: usize, batch: usize },
}

/// The deterministic mixed workload: a cycle of aggressive sequential
/// KDJ, exact 2-thread KDJ, pull-driven IDJ cursors, and aggressive
/// 2-thread KDJ, with varying k.
fn cells(n_queries: usize, k: usize) -> Vec<(String, Kind)> {
    (0..n_queries)
        .map(|i| {
            let kind = match i % 4 {
                0 => Kind::Kdj {
                    k: (k / (1 + i % 3)).max(1),
                    spec: QuerySpec::default(),
                },
                1 => Kind::Kdj {
                    k: (k / 2).max(1),
                    spec: QuerySpec {
                        aggressive: false,
                        threads: 2,
                        ..QuerySpec::default()
                    },
                },
                2 => Kind::Idj {
                    take: k.max(3),
                    batch: (k / 3).max(1),
                },
                _ => Kind::Kdj {
                    k: (k / 4).max(1),
                    spec: QuerySpec {
                        threads: 2,
                        ..QuerySpec::default()
                    },
                },
            };
            (format!("q{i:02}"), kind)
        })
        .collect()
}

/// The serial one-shot equivalent of one query, through the ordinary
/// library entry points.
fn serial(r: &RTree<2>, s: &RTree<2>, cfg: &JoinConfig, kind: &Kind) -> Vec<ResultPair> {
    match kind {
        Kind::Kdj { k, spec } => {
            let mut c = cfg.clone();
            if let Some(steal) = spec.steal {
                c.steal = steal;
            }
            c.partitions = (spec.partitions > 1).then_some(spec.partitions as usize);
            let t = (spec.threads as usize).max(1);
            match (spec.aggressive, t > 1) {
                (true, false) => am_kdj(r, s, *k, &c, &AmKdjOptions::default()).results,
                (true, true) => par_am_kdj(r, s, *k, &c, &AmKdjOptions::default(), t).results,
                (false, false) => b_kdj(r, s, *k, &c).results,
                (false, true) => par_b_kdj(r, s, *k, &c, t).results,
            }
        }
        Kind::Idj { take, .. } => {
            let mut cursor = AmIdj::new(r, s, cfg, AmIdjOptions::default());
            let mut out = Vec::with_capacity(*take);
            while out.len() < *take {
                match cursor.next() {
                    Some(p) => out.push(p),
                    None => break,
                }
            }
            out
        }
    }
}

fn assert_identical(label: &str, want: &[ResultPair], got: &[ResultPair]) {
    assert_eq!(want.len(), got.len(), "{label}: result count");
    for (i, (a, b)) in want.iter().zip(got.iter()).enumerate() {
        assert_eq!(
            a.dist.to_bits(),
            b.dist.to_bits(),
            "{label}: rank {i} distance"
        );
        assert_eq!((a.r, a.s), (b.r, b.s), "{label}: rank {i} ids");
    }
}

/// Runs `n_queries` concurrent mixed queries through one server and
/// checks bit-identity against serial plus the counter-sum invariant.
fn run_mixed(n_queries: usize) {
    let a = uniform_points(600, unit_universe(), 11);
    let b = clustered_points(600, 16, 0.02, unit_universe(), 12);
    let (r, s) = build_trees(&a, &b);
    let cfg = JoinConfig::default();
    let cells = cells(n_queries, 60);
    // Serial expectations first: their buffer traffic must not land in
    // the window the global-counter delta is measured over.
    let expected: Vec<Vec<ResultPair>> = cells
        .iter()
        .map(|(_, kind)| serial(&r, &s, &cfg, kind))
        .collect();
    let hits_before = r.buffer_hits() + s.buffer_hits();
    let misses_before = r.buffer_misses() + s.buffer_misses();
    let server = Server::new(
        &r,
        &s,
        ServeOptions {
            base_config: cfg.clone(),
            ..ServeOptions::default()
        },
    );
    let measured: Vec<Vec<ResultPair>> = std::thread::scope(|scope| {
        let handles: Vec<_> = cells
            .iter()
            .map(|(id, kind)| {
                let server = &server;
                scope.spawn(move || match kind {
                    Kind::Kdj { k, spec } => server.kdj(id, *k, spec).expect("admitted").0.results,
                    Kind::Idj { take, batch } => {
                        server
                            .idj_open(id, *take, QuerySpec::default())
                            .expect("cursor opens");
                        let mut out = Vec::with_capacity(*take);
                        loop {
                            let (chunk, done, _) = server.idj_pull(id, *batch).expect("pull");
                            out.extend(chunk);
                            if done || out.len() >= *take {
                                break;
                            }
                        }
                        server.idj_close(id).expect("cursor closes");
                        out
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("query panicked"))
            .collect()
    });
    for (((id, _), got), want) in cells.iter().zip(&measured).zip(&expected) {
        assert_identical(id, want, got);
    }
    // The counter-sum invariant: per-query attribution reproduces the
    // shared buffer's global deltas exactly.
    let reports = server.query_reports();
    assert_eq!(reports.len(), cells.len(), "one report per query");
    let sum_hits: u64 = reports.iter().map(|rep| rep.buffer_hits).sum();
    let sum_misses: u64 = reports.iter().map(|rep| rep.buffer_misses).sum();
    let global_hits = r.buffer_hits() + s.buffer_hits() - hits_before;
    let global_misses = r.buffer_misses() + s.buffer_misses() - misses_before;
    assert_eq!(
        sum_hits, global_hits,
        "per-query hits sum to the global delta"
    );
    assert_eq!(
        sum_misses, global_misses,
        "per-query misses sum to the global delta"
    );
    // Every report delivered what its query's serial equivalent did.
    for ((id, _), want) in cells.iter().zip(&expected) {
        let rep = reports
            .iter()
            .find(|rep| rep.id == *id)
            .expect("report exists");
        assert_eq!(rep.results, want.len() as u64, "{id}: reported results");
    }
}

#[test]
fn two_concurrent_queries_bit_identical_and_attributed() {
    run_mixed(2);
}

#[test]
fn eight_concurrent_queries_bit_identical_and_attributed() {
    run_mixed(8);
}

#[test]
fn thirty_two_concurrent_queries_bit_identical_and_attributed() {
    run_mixed(32);
}
