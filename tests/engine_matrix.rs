//! The engine matrix: every pruning policy × execution backend × thread
//! count × scheduling knob (work stealing on/off, locality vs round-robin
//! partitioning) must produce the same pair set for the same query — bit
//! for bit
//! once the only legitimate divergence (tie order at equal distance) is
//! removed by canonical `(dist, r, s)` ordering. One property test covers
//! what per-algorithm parity tests used to check pairwise: the policies
//! are exercised with adversarial `eDmax` values (zero, badly under- and
//! over-estimated) and the backends across thread counts, and every cell
//! of the matrix is compared against both brute force and the sequential
//! exact reference — under the scheduling product *and* the leaf-kernel
//! product (scalar sweep / lane kernel / lane kernel + quantized
//! prefilter). A second property pins the kernel × prefilter product
//! across policies and the incremental driver, and a third holds the
//! matrix together under a tight spill-queue memory budget.

use amdj_core::engine::{self, Aggressive, Exact, Parallel, Sequential};
use amdj_core::{bruteforce, AmIdjOptions, JoinConfig, Partition, ResultPair};
use amdj_geom::Rect;
use amdj_rtree::{RTree, RTreeParams};
use amdj_storage::CostModel;
use proptest::prelude::*;

fn arb_dataset(max_n: usize) -> impl Strategy<Value = Vec<(Rect<2>, u64)>> {
    prop::collection::vec(
        (0.0..1000.0f64, 0.0..1000.0f64, 0.0..5.0f64, 0.0..5.0f64),
        1..max_n,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (x, y, w, h))| (Rect::new([x, y], [x + w, y + h]), i as u64))
            .collect()
    })
}

fn trees(a: &[(Rect<2>, u64)], b: &[(Rect<2>, u64)]) -> (RTree<2>, RTree<2>) {
    (
        RTree::bulk_load(RTreeParams::for_tests(), a.to_vec()),
        RTree::bulk_load(RTreeParams::for_tests(), b.to_vec()),
    )
}

fn canonical(mut v: Vec<ResultPair>) -> Vec<ResultPair> {
    v.sort_by(|a, b| {
        a.dist
            .total_cmp(&b.dist)
            .then_with(|| a.r.cmp(&b.r))
            .then_with(|| a.s.cmp(&b.s))
    });
    v
}

fn assert_identical(
    label: &str,
    want: &[ResultPair],
    got: &[ResultPair],
) -> Result<(), TestCaseError> {
    prop_assert_eq!(want.len(), got.len(), "{}: result count", label);
    for (i, (a, b)) in want.iter().zip(got.iter()).enumerate() {
        prop_assert_eq!(
            a.dist.to_bits(),
            b.dist.to_bits(),
            "{}: rank {} distance",
            label,
            i
        );
        // Ids may legitimately differ only when the boundary distance
        // ties; random continuous rectangles make that measure-zero, so
        // any mismatch here is a real engine bug.
        prop_assert_eq!((a.r, a.s), (b.r, b.s), "{}: rank {} ids", label, i);
    }
    Ok(())
}

/// Policy cells: `None` is [`Exact`]; `Some(e)` is [`Aggressive`] with
/// that `edmax_override` (`Some(None)` uses the Equation 3 estimator).
fn run_cell(
    r: &RTree<2>,
    s: &RTree<2>,
    k: usize,
    cfg: &JoinConfig,
    policy: Option<Option<f64>>,
    threads: Option<usize>,
) -> Vec<ResultPair> {
    let out = match (policy, threads) {
        (None, None) => engine::kdj(r, s, k, cfg, &Exact, &Sequential),
        (None, Some(t)) => engine::kdj(r, s, k, cfg, &Exact, &Parallel::new(t)),
        (Some(e), None) => {
            engine::kdj(r, s, k, cfg, &Aggressive { edmax_override: e }, &Sequential)
        }
        (Some(e), Some(t)) => engine::kdj(
            r,
            s,
            k,
            cfg,
            &Aggressive { edmax_override: e },
            &Parallel::new(t),
        ),
    };
    canonical(out.results)
}

fn policy_cells(scale: f64) -> Vec<(String, Option<Option<f64>>)> {
    let mut cells: Vec<(String, Option<Option<f64>>)> =
        vec![("exact".into(), None), ("agg[est]".into(), Some(None))];
    // Adversarial eDmax: zero and badly under-estimated force the full
    // compensation stage; over-estimated makes stage one near-exhaustive.
    for factor in [0.0, 0.1, 0.5, 0.9, 1.5, 10.0] {
        cells.push((format!("agg[{factor}×]"), Some(Some(scale * factor))));
    }
    cells
}

const BACKENDS: [Option<usize>; 5] = [None, Some(1), Some(2), Some(3), Some(8)];

/// The leaf-kernel product: (label, `batched_leaf_sweep`,
/// `quantized_prefilter`). The default cell — lane kernel with the
/// prefilter armed — is what every other loop here runs, so the sweep
/// adds the two ablated combinations; `(false, true)` is omitted because
/// the prefilter lives inside the batched kernel and is inert without it.
const KERNEL_CELLS: [(&str, bool, bool); 2] = [("scalar", false, false), ("lanes", true, false)];

/// Scheduling knobs to sweep per backend: sequential cells ignore them
/// (one combination suffices); parallel cells run the full
/// steal × partition product, because both switches reroute work between
/// workers and must never move a bit.
fn sched_cells(threads: Option<usize>) -> &'static [(bool, Partition)] {
    if threads.is_some() {
        &[
            (true, Partition::Locality),
            (true, Partition::RoundRobin),
            (false, Partition::Locality),
            (false, Partition::RoundRobin),
        ]
    } else {
        &[(true, Partition::Locality)]
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: amdj_tests::proptest_cases(12),
        ..ProptestConfig::default()
    })]

    /// Every (policy × backend × thread count) cell equals brute force and
    /// the sequential exact reference.
    #[test]
    fn kdj_matrix_bit_identical(
        a in arb_dataset(80),
        b in arb_dataset(80),
        k in 1usize..110,
    ) {
        let want = bruteforce::k_closest_pairs(&a, &b, k);
        let (r, s) = trees(&a, &b);
        let cfg = JoinConfig::unbounded();
        let reference = run_cell(&r, &s, k, &cfg, None, None);
        prop_assert_eq!(reference.len(), want.len());
        for (g, w) in reference.iter().zip(want.iter()) {
            prop_assert!((g.dist - w.dist).abs() < 1e-9, "{} != {}", g.dist, w.dist);
        }
        let scale = want.last().map_or(1.0, |p| p.dist);
        for (name, policy) in policy_cells(scale) {
            for threads in BACKENDS {
                // The scheduling product under the default kernel…
                for &(steal, partition) in sched_cells(threads) {
                    let cfg = JoinConfig { steal, partition, ..JoinConfig::unbounded() };
                    let label =
                        format!("{name} × {threads:?} steal={steal} part={partition:?}");
                    let got = run_cell(&r, &s, k, &cfg, policy, threads);
                    assert_identical(&label, &reference, &got)?;
                }
                // …and the kernel × prefilter product under the default
                // schedule (the third combination, lanes + prefilter, is
                // the default the loop above just ran).
                for (kname, batched, prefilter) in KERNEL_CELLS {
                    let cfg = JoinConfig {
                        batched_leaf_sweep: batched,
                        quantized_prefilter: prefilter,
                        ..JoinConfig::unbounded()
                    };
                    let label = format!("{name} × {threads:?} kernel={kname}");
                    let got = run_cell(&r, &s, k, &cfg, policy, threads);
                    assert_identical(&label, &reference, &got)?;
                }
            }
        }
    }

    /// The incremental driver across backends: the parallel cursor merge
    /// equals the sequential stage loop for every thread count, including
    /// under an under-estimating stage schedule.
    #[test]
    fn idj_matrix_bit_identical(
        a in arb_dataset(70),
        b in arb_dataset(70),
        take in 1usize..100,
        initial_k in 1u64..64,
    ) {
        let want = bruteforce::k_closest_pairs(&a, &b, take);
        let (r, s) = trees(&a, &b);
        let cfg = JoinConfig::unbounded();
        let opts = AmIdjOptions { initial_k, growth: 2.0, ..AmIdjOptions::default() };
        let reference = canonical(engine::idj(&r, &s, take, &cfg, &opts, &Sequential).results);
        prop_assert_eq!(reference.len(), want.len());
        for (g, w) in reference.iter().zip(want.iter()) {
            prop_assert!((g.dist - w.dist).abs() < 1e-9, "{} != {}", g.dist, w.dist);
        }
        for threads in [1usize, 2, 4] {
            for &(steal, partition) in sched_cells(Some(threads)) {
                let cfg = JoinConfig { steal, partition, ..JoinConfig::unbounded() };
                let got = canonical(
                    engine::idj(&r, &s, take, &cfg, &opts, &Parallel::new(threads)).results,
                );
                let label = format!("idj × {threads} steal={steal} part={partition:?}");
                assert_identical(&label, &reference, &got)?;
            }
        }
    }

    /// The lane kernel and its quantized prefilter are implementation
    /// details: every combination of `batched_leaf_sweep` ×
    /// `quantized_prefilter` must match the scalar sweep bit for bit,
    /// under either policy (the aggressive under-estimate freezes the
    /// axis cutoff, which is what arms the batched path) and for the
    /// incremental driver. The counter semantics are pinned too:
    /// distances computed plus distances skipped must equal the scalar
    /// path's distance count, with one skip per quantized reject.
    #[test]
    fn batched_kernel_bit_identical(
        a in arb_dataset(80),
        b in arb_dataset(80),
        k in 1usize..110,
    ) {
        let (r, s) = trees(&a, &b);
        let scalar = JoinConfig {
            batched_leaf_sweep: false,
            quantized_prefilter: false,
            ..JoinConfig::unbounded()
        };
        let combos = [("lanes+q", true, true), ("lanes", true, false), ("scalar+q", false, true)];
        let scale = bruteforce::dmax_for_k(&a, &b, k).unwrap_or(1.0);
        for policy in [None, Some(None), Some(Some(scale * 0.4))] {
            let baseline = match (policy, ()) {
                (None, ()) => engine::kdj(&r, &s, k, &scalar, &Exact, &Sequential),
                (Some(e), ()) => {
                    engine::kdj(&r, &s, k, &scalar, &Aggressive { edmax_override: e }, &Sequential)
                }
            };
            let without = canonical(baseline.results.clone());
            prop_assert_eq!(baseline.stats.quantized_rejects, 0u64);
            for (kname, batched, prefilter) in combos {
                let cfg = JoinConfig {
                    batched_leaf_sweep: batched,
                    quantized_prefilter: prefilter,
                    ..JoinConfig::unbounded()
                };
                let out = match (policy, ()) {
                    (None, ()) => engine::kdj(&r, &s, k, &cfg, &Exact, &Sequential),
                    (Some(e), ()) => engine::kdj(
                        &r, &s, k, &cfg, &Aggressive { edmax_override: e }, &Sequential,
                    ),
                };
                let with = canonical(out.results.clone());
                assert_identical(&format!("{kname} {policy:?}"), &without, &with)?;
                // The prefilter only ever *skips* distance computations.
                prop_assert_eq!(
                    out.stats.real_dist + out.stats.exact_dist_skipped,
                    baseline.stats.real_dist,
                    "{}: computed + skipped must equal the scalar count",
                    kname
                );
                prop_assert_eq!(out.stats.quantized_rejects, out.stats.exact_dist_skipped);
                if !(batched && prefilter) {
                    prop_assert_eq!(out.stats.quantized_rejects, 0u64);
                }
            }
        }
        let opts = AmIdjOptions::default();
        let without = canonical(engine::idj(&r, &s, k, &scalar, &opts, &Sequential).results);
        for (kname, batched, prefilter) in combos {
            let cfg = JoinConfig {
                batched_leaf_sweep: batched,
                quantized_prefilter: prefilter,
                ..JoinConfig::unbounded()
            };
            let out = engine::idj(&r, &s, k, &cfg, &opts, &Sequential);
            let with = canonical(out.results.clone());
            assert_identical(&format!("{kname} idj"), &without, &with)?;
            // AM-IDJ sweeps record rejected distances (full marks), so
            // the prefilter must sit the incremental join out entirely.
            prop_assert_eq!(out.stats.quantized_rejects, 0u64, "{}: idj prefilter", kname);
        }
    }

    /// A tight spill budget changes where queue entries live, never what
    /// comes out: representative matrix cells against the unbounded
    /// reference.
    #[test]
    fn matrix_invariant_under_memory_budget(
        a in arb_dataset(70),
        b in arb_dataset(70),
        k in 1usize..90,
        mem_kb in 1usize..32,
    ) {
        let (r, s) = trees(&a, &b);
        let tight = JoinConfig {
            queue_mem_bytes: mem_kb * 1024,
            queue_cost: CostModel { page_size: 1024, ..CostModel::paper_1999_disk() },
            ..JoinConfig::default()
        };
        let reference = run_cell(&r, &s, k, &JoinConfig::unbounded(), None, None);
        let scale = bruteforce::dmax_for_k(&a, &b, k).unwrap_or(1.0);
        for (name, policy) in [
            ("exact", None),
            ("agg[est]", Some(None)),
            ("agg[0.3×]", Some(Some(scale * 0.3))),
        ] {
            for threads in [None, Some(1), Some(4)] {
                let label = format!("tight {name} × {threads:?}");
                let got = run_cell(&r, &s, k, &tight, policy, threads);
                assert_identical(&label, &reference, &got)?;
            }
        }
    }
}
