//! Allocation accounting for the sweep kernel: in steady state the join
//! loop must not allocate per node-pair expansion.
//!
//! The old kernel built two fresh sorted entry vectors (plus mark vectors
//! under aggressive modes) for *every* expansion — at least two heap
//! allocations per node pair, typically four or more. The `SweepScratch`
//! refactor reuses those buffers across the whole join, so the only
//! remaining allocations are amortized container growth (main queue,
//! results), page-cache recency bookkeeping, and deliberate `park()`
//! hand-offs. Counting allocations across an entire warm join and
//! dividing by the expansion count separates the two regimes cleanly:
//! the old code cannot go below 2 allocations per expansion, the new one
//! sits well under 1.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use amdj_core::{am_kdj, b_kdj, AmKdjOptions, JoinConfig};
use amdj_geom::{Point, Rect};
use amdj_rtree::{RTree, RTreeParams};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to `System` unchanged; the counter is
// a relaxed atomic with no further invariants.
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Small pages force deep trees (many node-pair expansions to count);
/// the large buffer keeps every page resident so the measured runs are
/// cache-warm and the page-fault path stays out of the numbers.
fn params() -> RTreeParams {
    RTreeParams {
        page_size: 512,
        buffer_bytes: 8 * 1024 * 1024,
        ..RTreeParams::paper_defaults()
    }
}

fn grid(n: usize, dx: f64, dy: f64) -> Vec<(Rect<2>, u64)> {
    (0..n * n)
        .map(|i| {
            // Irrational-ish jitter keeps distances tie-free.
            let x = (i % n) as f64 + dx + (i as f64 * 0.000137).sin() * 0.01;
            let y = (i / n) as f64 + dy + (i as f64 * 0.000271).cos() * 0.01;
            (Rect::from_point(Point::new([x, y])), i as u64)
        })
        .collect()
}

/// A warm B-KDJ run (page cache populated, no compensation bookkeeping)
/// must average well under one allocation per node-pair expansion.
#[test]
fn warm_bkdj_sweep_is_allocation_free_per_expansion() {
    let a = grid(40, 0.0, 0.0);
    let b = grid(40, 0.27, 0.41);
    let r = RTree::bulk_load(params(), a);
    let s = RTree::bulk_load(params(), b);
    let cfg = JoinConfig::unbounded();
    let k = 600;
    // Warm-up run: faults every needed page into the buffer and sizes the
    // measurement run's expansion count.
    let warm = b_kdj(&r, &s, k, &cfg);
    let expansions = warm.stats.stage1_expansions;
    assert!(
        expansions > 100,
        "workload too small to measure ({expansions} expansions)"
    );

    let before = allocations();
    let out = b_kdj(&r, &s, k, &cfg);
    let delta = allocations() - before;

    assert_eq!(out.results.len(), k);
    assert_eq!(out.stats.stage1_expansions, expansions, "runs must match");
    // Residual allocations: amortized main-queue/result growth (O(log)),
    // page-cache recency updates (one BTreeMap rebalance every few
    // hits), and one-time scratch sizing. The pre-refactor kernel
    // allocated ≥ 2 vectors per expansion and fails this bound by an
    // order of magnitude.
    assert!(
        delta < expansions,
        "{delta} allocations for {expansions} expansions — sweep is allocating per node pair"
    );
}

/// The aggressive + compensation path allocates when parking a skipped
/// expansion: `park()` hands the scratch buffers over to the owned
/// [`CompEntry`] (the one sanctioned allocation), and the next expansion
/// must then refill fresh ones. Expansions that park are therefore
/// allowed a small constant number of allocations; everything else must
/// stay amortized, which the bound below checks.
#[test]
fn warm_amkdj_sweep_allocates_only_for_parked_expansions() {
    let a = grid(35, 0.0, 0.0);
    let b = grid(35, 0.31, 0.17);
    let r = RTree::bulk_load(params(), a);
    let s = RTree::bulk_load(params(), b);
    let cfg = JoinConfig::unbounded();
    let opts = AmKdjOptions::default();
    let k = 500;
    let warm = am_kdj(&r, &s, k, &cfg, &opts);
    let expansions = warm.stats.stage1_expansions + warm.stats.stage2_expansions;
    let parks = warm.stats.compq_insertions;
    assert!(
        expansions > 100,
        "workload too small to measure ({expansions} expansions)"
    );

    let before = allocations();
    let out = am_kdj(&r, &s, k, &cfg, &opts);
    let delta = allocations() - before;

    assert_eq!(out.results.len(), k);
    // One park moves out two entry buffers and a mark set and forces one
    // scratch refill — a handful of allocations, all accounted to the
    // park. Non-parking expansions must stay allocation-free; the
    // pre-refactor kernel allocated ≥ 2 vectors on *every* expansion and
    // busts this bound even with zero parks.
    assert!(
        delta < expansions + 8 * parks,
        "{delta} allocations for {expansions} expansions ({parks} parks) — \
         aggressive sweep is allocating on non-parking node pairs"
    );
}
