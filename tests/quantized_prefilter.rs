//! Join-level proofs for the quantized MBR prefilter: switching the
//! integer screen on must never move a bit of any join's output, on
//! random data *and* on the degenerate geometry the quantization grid
//! has to survive — coincident rectangles, collinear points (a bounding
//! box with a zero-width axis), and fully degenerate sweeps where every
//! coordinate coincides and the grid disables itself.
//!
//! The kernel-level conservativeness property (the integer bound never
//! exceeds the true `min_dist`) lives next to the kernel in
//! `amdj-core`'s `engine::batch` tests; this suite pins the end-to-end
//! consequence and the counter semantics:
//! `real_dist(on) + exact_dist_skipped(on) == real_dist(off)`.

use amdj_core::{am_kdj, sj_sort, within_join, AmKdjOptions, JoinConfig, ResultPair};
use amdj_geom::Rect;
use amdj_rtree::{RTree, RTreeParams};
use proptest::prelude::*;

fn trees(a: &[(Rect<2>, u64)], b: &[(Rect<2>, u64)]) -> (RTree<2>, RTree<2>) {
    (
        RTree::bulk_load(RTreeParams::for_tests(), a.to_vec()),
        RTree::bulk_load(RTreeParams::for_tests(), b.to_vec()),
    )
}

fn on_off() -> (JoinConfig, JoinConfig) {
    let on = JoinConfig::unbounded();
    let off = JoinConfig {
        quantized_prefilter: false,
        ..JoinConfig::unbounded()
    };
    (on, off)
}

fn assert_bit_identical(label: &str, want: &[ResultPair], got: &[ResultPair]) {
    assert_eq!(want.len(), got.len(), "{label}: result count");
    for (i, (a, b)) in want.iter().zip(got.iter()).enumerate() {
        assert_eq!(
            a.dist.to_bits(),
            b.dist.to_bits(),
            "{label}: rank {i} distance"
        );
        assert_eq!((a.r, a.s), (b.r, b.s), "{label}: rank {i} ids");
    }
}

/// Runs every prefilter-sensitive join with the screen on and off and
/// asserts bit-identity plus the counter ledger. `dmax` parameterizes
/// the frozen-cutoff joins (within / SJ-SORT), `k` the adaptive one.
fn check_all(label: &str, a: &[(Rect<2>, u64)], b: &[(Rect<2>, u64)], k: usize, dmax: f64) {
    let (r, s) = trees(a, b);
    let (on, off) = on_off();

    let w_on = within_join(&r, &s, dmax, &on);
    let w_off = within_join(&r, &s, dmax, &off);
    assert_bit_identical(&format!("{label}: within"), &w_off.results, &w_on.results);
    assert_eq!(
        w_on.stats.real_dist + w_on.stats.exact_dist_skipped,
        w_off.stats.real_dist,
        "{label}: within counter ledger"
    );
    assert_eq!(w_on.stats.quantized_rejects, w_on.stats.exact_dist_skipped);
    assert_eq!(w_off.stats.quantized_rejects, 0);

    let sj_on = sj_sort(&r, &s, k, dmax, &on);
    let sj_off = sj_sort(&r, &s, k, dmax, &off);
    assert_bit_identical(
        &format!("{label}: sj_sort"),
        &sj_off.results,
        &sj_on.results,
    );

    let am_on = am_kdj(&r, &s, k, &on, &AmKdjOptions::default());
    let am_off = am_kdj(&r, &s, k, &off, &AmKdjOptions::default());
    assert_bit_identical(&format!("{label}: am_kdj"), &am_off.results, &am_on.results);
    assert_eq!(
        am_on.stats.real_dist + am_on.stats.exact_dist_skipped,
        am_off.stats.real_dist,
        "{label}: am_kdj counter ledger"
    );
}

/// Coincident points: the sweep bounding box is a single point, the grid
/// refuses to build (`cw` would be zero), and the kernel must fall back
/// to the dense path untouched.
#[test]
fn all_coincident_rectangles() {
    let a: Vec<_> = (0..40)
        .map(|i| (Rect::new([5.0, 5.0], [5.0, 5.0]), i))
        .collect();
    let b = a.clone();
    check_all("coincident", &a, &b, 10, 0.5);
}

/// Collinear points: one bounding-box axis has zero width, so that
/// dimension quantizes to cell 0 everywhere while the other carries all
/// the rejection power.
#[test]
fn collinear_zero_width_axis() {
    let a: Vec<_> = (0..60)
        .map(|i| {
            let x = i as f64 * 1.7;
            (Rect::new([x, 3.0], [x, 3.0]), i)
        })
        .collect();
    let b: Vec<_> = (0..60)
        .map(|i| {
            let x = i as f64 * 2.3 + 0.4;
            (Rect::new([x, 3.0], [x, 3.0]), i)
        })
        .collect();
    check_all("collinear", &a, &b, 15, 4.0);
}

/// The frozen-cutoff joins on a workload big enough that the screen
/// actually fires: the prefilter must reject a healthy share of
/// candidates (else it is dead code) while the ledger stays balanced.
#[test]
fn prefilter_actually_rejects() {
    let a: Vec<_> = (0..1600)
        .map(|i| {
            let x = (i % 40) as f64 * 2.0 + ((i as f64) * 0.000137).sin() * 0.01;
            let y = (i / 40) as f64 * 2.0 + ((i as f64) * 0.000271).cos() * 0.01;
            (Rect::new([x, y], [x, y]), i as u64)
        })
        .collect();
    let b: Vec<_> = (0..1600)
        .map(|i| {
            let x = (i % 40) as f64 * 2.0 + 0.9;
            let y = (i / 40) as f64 * 2.0 + 0.7;
            (Rect::new([x, y], [x, y]), i as u64)
        })
        .collect();
    let (r, s) = trees(&a, &b);
    let (on, off) = on_off();
    let w_on = within_join(&r, &s, 1.3, &on);
    let w_off = within_join(&r, &s, 1.3, &off);
    assert_bit_identical("dense within", &w_off.results, &w_on.results);
    assert!(
        w_on.stats.quantized_rejects > 0,
        "prefilter never fired on a workload built to trip it"
    );
    assert_eq!(
        w_on.stats.real_dist + w_on.stats.exact_dist_skipped,
        w_off.stats.real_dist
    );
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: amdj_tests::proptest_cases(16),
        ..ProptestConfig::default()
    })]

    /// Random rectangles with snapped coordinates (degenerate extents and
    /// exact coincidences are common, not measure-zero): prefilter on is
    /// bit-identical to prefilter off for every join that arms it.
    #[test]
    fn prefilter_bit_identical_random(
        raw_a in prop::collection::vec(
            (0i64..200, 0i64..200, 0i64..8, 0i64..8), 1..70),
        raw_b in prop::collection::vec(
            (0i64..200, 0i64..200, 0i64..8, 0i64..8), 1..70),
        k in 1usize..60,
        dmax_tenths in 1i64..120,
    ) {
        let snap = |raw: Vec<(i64, i64, i64, i64)>| -> Vec<(Rect<2>, u64)> {
            raw.into_iter()
                .enumerate()
                .map(|(i, (x, y, w, h))| {
                    let (x, y) = (x as f64 * 0.5, y as f64 * 0.5);
                    (Rect::new([x, y], [x + w as f64, y + h as f64]), i as u64)
                })
                .collect()
        };
        check_all("random", &snap(raw_a), &snap(raw_b), k, dmax_tenths as f64 * 0.1);
    }
}
