//! Incremental-join behaviour across crates: ordering, resumability,
//! stage accounting, and agreement between HS-IDJ and AM-IDJ.

use amdj_core::{bruteforce, AmIdj, AmIdjOptions, Correction, EdmaxPolicy, HsIdj, JoinConfig};
use amdj_datagen::tiger::Geography;
use amdj_datagen::{clustered_points, unit_universe};
use amdj_tests::build_trees;

#[test]
fn hs_and_am_idj_stream_identically() {
    let geo = Geography::arizona_like(17);
    let a = geo.streets(900);
    let b = geo.hydro(400);
    let (r1, s1) = build_trees(&a, &b);
    let (r2, s2) = build_trees(&a, &b);
    let mut hs = HsIdj::new(&r1, &s1, &JoinConfig::unbounded());
    let mut am = AmIdj::new(&r2, &s2, &JoinConfig::unbounded(), AmIdjOptions::default());
    for i in 0..500 {
        let h = hs.next().expect("HS stream");
        let a_ = am.next().expect("AM stream");
        assert!(
            (h.dist - a_.dist).abs() < 1e-9,
            "rank {i}: {} vs {}",
            h.dist,
            a_.dist
        );
    }
}

#[test]
fn batched_consumption_matches_one_shot() {
    // Asking in 7 uneven batches must give the same stream as one big ask.
    let a = clustered_points(700, 5, 0.02, unit_universe(), 3);
    let b = clustered_points(500, 5, 0.02, unit_universe(), 4);
    let want = bruteforce::k_closest_pairs(&a, &b, 350);
    let (r, s) = build_trees(&a, &b);
    let mut cursor = AmIdj::new(
        &r,
        &s,
        &JoinConfig::unbounded(),
        AmIdjOptions {
            initial_k: 10,
            growth: 3.0,
            ..AmIdjOptions::default()
        },
    );
    let mut got = Vec::new();
    for batch in [1usize, 9, 40, 100, 100, 50, 50] {
        for _ in 0..batch {
            got.push(cursor.next().expect("stream"));
        }
    }
    assert_eq!(got.len(), 350);
    for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
        assert!((g.dist - w.dist).abs() < 1e-9, "rank {i}");
    }
}

#[test]
fn stages_advance_and_are_observable() {
    let a = clustered_points(600, 3, 0.01, unit_universe(), 5);
    let b = clustered_points(600, 3, 0.01, unit_universe(), 6);
    let (r, s) = build_trees(&a, &b);
    // Clustered data makes Equation (3) overestimate; force tiny stages
    // via a schedule so compensation must run repeatedly.
    let mut cursor = AmIdj::new(
        &r,
        &s,
        &JoinConfig::unbounded(),
        AmIdjOptions {
            initial_k: 1,
            growth: 2.0,
            edmax: EdmaxPolicy::Schedule(vec![1e-9]),
        },
    );
    let mut edmax_prev = cursor.current_edmax();
    for _ in 0..200 {
        cursor.next().expect("stream");
        let e = cursor.current_edmax();
        assert!(e >= edmax_prev, "eDmax never shrinks");
        edmax_prev = e;
    }
    assert!(
        cursor.stage() >= 2,
        "schedule far below Dmax must force stages"
    );
    assert_eq!(cursor.stats().results, 200);
}

#[test]
fn estimated_policy_min_and_max_agree_on_results() {
    let geo = Geography::arizona_like(23);
    let a = geo.streets(800);
    let b = geo.hydro(300);
    let want = bruteforce::k_closest_pairs(&a, &b, 400);
    for corr in [
        Correction::Arithmetic,
        Correction::Geometric,
        Correction::MinOfBoth,
        Correction::MaxOfBoth,
    ] {
        let (r, s) = build_trees(&a, &b);
        let mut cursor = AmIdj::new(
            &r,
            &s,
            &JoinConfig::unbounded(),
            AmIdjOptions {
                initial_k: 16,
                growth: 2.5,
                edmax: EdmaxPolicy::Estimated(corr),
            },
        );
        for (i, w) in want.iter().enumerate() {
            let g = cursor
                .next()
                .unwrap_or_else(|| panic!("{corr:?}: exhausted at {i}"));
            assert!((g.dist - w.dist).abs() < 1e-9, "{corr:?} rank {i}");
        }
    }
}

#[test]
fn exhaustion_is_stable_and_complete() {
    let a = clustered_points(40, 2, 0.05, unit_universe(), 7);
    let b = clustered_points(30, 2, 0.05, unit_universe(), 8);
    let (r, s) = build_trees(&a, &b);
    let mut cursor = AmIdj::new(&r, &s, &JoinConfig::unbounded(), AmIdjOptions::default());
    let mut n = 0;
    while cursor.next().is_some() {
        n += 1;
    }
    assert_eq!(n, 40 * 30);
    assert!(cursor.next().is_none());
    assert!(cursor.next().is_none());
}
