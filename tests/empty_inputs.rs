//! Empty-input regression: every join entry point — sequential,
//! parallel, partitioned, incremental — must return a clean empty result
//! when either input tree is empty (or `k`/`take` is zero), never panic.
//! Degenerate-but-nonempty inputs ride along: all-identical points give
//! STR maximally skewed tiles, which must still cover every object and
//! join exactly.

use amdj_core::engine::{self, Aggressive, Exact, Parallel, Sequential};
use amdj_core::{
    am_kdj, b_kdj, hs_kdj, knn_join, par_am_idj, par_am_kdj, par_b_kdj, AmIdjOptions, AmKdjOptions,
    JoinConfig, ResultPair,
};
use amdj_geom::Rect;
use amdj_rtree::{RTree, RTreeParams};

fn tree(pts: &[(f64, f64)]) -> RTree<2> {
    let items: Vec<(Rect<2>, u64)> = pts
        .iter()
        .enumerate()
        .map(|(i, &(x, y))| (Rect::new([x, y], [x, y]), i as u64))
        .collect();
    RTree::bulk_load(RTreeParams::for_tests(), items)
}

fn empty() -> RTree<2> {
    tree(&[])
}

fn some_points() -> RTree<2> {
    tree(&[(0.0, 0.0), (1.0, 2.0), (3.0, 1.0), (4.0, 4.0), (2.0, 3.0)])
}

fn assert_empty(label: &str, results: &[ResultPair]) {
    assert!(results.is_empty(), "{label}: expected no results");
}

#[test]
fn kdj_entry_points_handle_empty_inputs() {
    let cfg = JoinConfig::unbounded();
    let part_cfg = JoinConfig {
        partitions: Some(4),
        ..JoinConfig::unbounded()
    };
    for (label, r, s) in [
        ("empty×full", empty(), some_points()),
        ("full×empty", some_points(), empty()),
        ("empty×empty", empty(), empty()),
    ] {
        assert_empty(label, &b_kdj(&r, &s, 3, &cfg).results);
        assert_empty(
            label,
            &am_kdj(&r, &s, 3, &cfg, &AmKdjOptions::default()).results,
        );
        assert_empty(label, &hs_kdj(&r, &s, 3, &cfg).results);
        assert_empty(label, &par_b_kdj(&r, &s, 3, &cfg, 2).results);
        assert_empty(
            label,
            &par_am_kdj(&r, &s, 3, &cfg, &AmKdjOptions::default(), 2).results,
        );
        // The partitioned plan: empty inputs yield no tiles, no pairs.
        for threads in [None, Some(2)] {
            let out = match threads {
                None => engine::kdj(&r, &s, 3, &part_cfg, &Exact, &Sequential),
                Some(t) => engine::kdj(&r, &s, 3, &part_cfg, &Exact, &Parallel::new(t)),
            };
            assert_empty(label, &out.results);
            assert_eq!(out.stats.partition_pairs_total, 0, "{label}: no pairs");
        }
        let out = engine::kdj(&r, &s, 3, &part_cfg, &Aggressive::default(), &Sequential);
        assert_empty(label, &out.results);
        assert!(knn_join(&r, &s, 3).groups.iter().all(|g| g.1.is_empty()));
    }
}

#[test]
fn idj_entry_points_handle_empty_inputs() {
    let cfg = JoinConfig::unbounded();
    let opts = AmIdjOptions::default();
    for (label, r, s) in [
        ("empty×full", empty(), some_points()),
        ("full×empty", some_points(), empty()),
        ("empty×empty", empty(), empty()),
    ] {
        assert_empty(
            label,
            &engine::idj(&r, &s, 4, &cfg, &opts, &Sequential).results,
        );
        assert_empty(label, &par_am_idj(&r, &s, 4, &cfg, &opts, 2).results);
    }
}

#[test]
fn zero_k_and_zero_take_return_cleanly() {
    let cfg = JoinConfig::unbounded();
    let part_cfg = JoinConfig {
        partitions: Some(4),
        ..JoinConfig::unbounded()
    };
    let (r, s) = (some_points(), some_points());
    assert_empty("k=0 b", &b_kdj(&r, &s, 0, &cfg).results);
    assert_empty(
        "k=0 am",
        &am_kdj(&r, &s, 0, &cfg, &AmKdjOptions::default()).results,
    );
    assert_empty(
        "k=0 partitioned",
        &engine::kdj(&r, &s, 0, &part_cfg, &Exact, &Sequential).results,
    );
    assert_empty(
        "take=0 idj",
        &engine::idj(&r, &s, 0, &cfg, &AmIdjOptions::default(), &Sequential).results,
    );
}

/// All-identical points make STR tiling maximally skewed (every center
/// ties); index-range chunking must still cover every object exactly
/// once and the partitioned join must match the monolithic one.
#[test]
fn skewed_tiles_cover_all_objects() {
    let r = tree(&[(1.0, 1.0); 9]);
    let s = tree(&[(1.0, 1.0), (1.5, 1.0), (1.0, 1.5)]);
    let k = 7;
    let cfg = JoinConfig::unbounded();
    let mono = b_kdj(&r, &s, k, &cfg);
    let part_cfg = JoinConfig {
        partitions: Some(8),
        ..JoinConfig::unbounded()
    };
    let part = engine::kdj(&r, &s, k, &part_cfg, &Exact, &Sequential);
    assert_eq!(mono.results.len(), part.results.len());
    for (a, b) in mono.results.iter().zip(part.results.iter()) {
        assert_eq!(a.dist.to_bits(), b.dist.to_bits());
        assert_eq!((a.r, a.s), (b.r, b.s));
    }
}
