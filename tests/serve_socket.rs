//! The TCP transport end to end: many concurrent connections drive the
//! shared server over real sockets and every response is bit-identical
//! to the serial equivalent; the connection cap, idle timeout, and
//! request-size bound all fire as structured errors; and a stop →
//! drain → checkpoint → restart → resume cycle over TCP loses nothing.
//!
//! Serial expectations come from a second `Server` over the same trees
//! fed the same request lines through `handle_line` one at a time —
//! the transport must add nothing and lose nothing relative to that.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use amdj_core::serve::{
    transport::{serve_listener, TransportOptions, TransportStats},
    ServeOptions, Server,
};
use amdj_core::JoinConfig;
use amdj_datagen::{clustered_points, uniform_points, unit_universe};
use amdj_rtree::RTree;
use amdj_tests::build_trees;

fn workload() -> (RTree<2>, RTree<2>) {
    let a = uniform_points(600, unit_universe(), 71);
    let b = clustered_points(600, 16, 0.02, unit_universe(), 72);
    build_trees(&a, &b)
}

fn serve_opts(cfg: &JoinConfig) -> ServeOptions {
    ServeOptions {
        base_config: cfg.clone(),
        // Small episodes so idj pulls suspend mid-join over the wire.
        episode_expansions: 64,
        ..ServeOptions::default()
    }
}

/// Fast-polling transport options so tests don't wait on 25 ms ticks.
fn fast_topts() -> TransportOptions {
    TransportOptions {
        poll_interval: Duration::from_millis(2),
        ..TransportOptions::default()
    }
}

/// One line-oriented client connection.
struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        Client { stream, reader }
    }

    /// Sends one request line and reads one response line.
    fn request(&mut self, line: &str) -> String {
        self.send(line);
        self.read_line().expect("response line")
    }

    fn send(&mut self, line: &str) {
        self.stream.write_all(line.as_bytes()).expect("write");
        self.stream.write_all(b"\n").expect("write newline");
    }

    /// Reads one response line; `None` on EOF.
    fn read_line(&mut self) -> Option<String> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => None,
            Ok(_) => Some(line.trim_end().to_string()),
            Err(e) => panic!("read: {e}"),
        }
    }

    /// True once the server has closed this connection.
    fn at_eof(&mut self) -> bool {
        let mut byte = [0u8; 1];
        matches!(self.reader.read(&mut byte), Ok(0))
    }
}

/// The deterministic tail of a response line: everything from
/// `"results":` on. Bit-identity of distances falls out of the codec's
/// shortest-round-trip float printing; what's excluded is only
/// `queue_wait_ns`, which legitimately differs under contention.
fn results_suffix(line: &str) -> &str {
    let at = line
        .find("\"results\":")
        .unwrap_or_else(|| panic!("no results in {line}"));
    &line[at..]
}

/// Runs `body` with a listener serving `server` on an ephemeral port,
/// then stops the transport and returns its stats.
fn with_listener<R>(
    server: &Server<'_, 2>,
    topts: &TransportOptions,
    body: impl FnOnce(std::net::SocketAddr, &AtomicBool) -> R,
) -> (TransportStats, R) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr");
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let handle = {
            let stop = &stop;
            scope.spawn(move || serve_listener(server, listener, topts, stop))
        };
        // A panicking body must still stop the listener, or the scope's
        // implicit join would hang the test instead of failing it.
        let guard = StopOnDrop(&stop);
        let out = body(addr, &stop);
        drop(guard);
        let stats = handle.join().expect("listener thread").expect("serve ok");
        (stats, out)
    })
}

struct StopOnDrop<'a>(&'a AtomicBool);

impl Drop for StopOnDrop<'_> {
    fn drop(&mut self) {
        self.0.store(true, Ordering::Relaxed);
    }
}

/// The request lines one query issues, in order. The mix cycles kdj
/// (plain / aggressive / threaded) and idj open → pull → close, the
/// same shapes the bench serves.
fn query_lines(i: usize) -> Vec<String> {
    let id = format!("q{i:03}");
    match i % 4 {
        0 => vec![format!("{{\"op\":\"kdj\",\"id\":\"{id}\",\"k\":64}}")],
        1 => vec![format!(
            "{{\"op\":\"kdj\",\"id\":\"{id}\",\"k\":32,\"aggressive\":true}}"
        )],
        2 => {
            let mut lines = vec![format!(
                "{{\"op\":\"idj_open\",\"id\":\"{id}\",\"take\":40}}"
            )];
            for _ in 0..3 {
                lines.push(format!("{{\"op\":\"idj_pull\",\"id\":\"{id}\",\"n\":16}}"));
            }
            lines.push(format!("{{\"op\":\"idj_close\",\"id\":\"{id}\"}}"));
            lines
        }
        _ => vec![format!(
            "{{\"op\":\"kdj\",\"id\":\"{id}\",\"k\":16,\"threads\":2}}"
        )],
    }
}

/// 128 mixed queries over 16 concurrent socket connections, each
/// response bit-identical to a serial server fed the same lines.
#[test]
fn concurrent_socket_queries_match_serial_bit_for_bit() {
    const QUERIES: usize = 128;
    const CONNS: usize = 16;
    let (r, s) = workload();
    let cfg = JoinConfig::default();

    // Serial ground truth: same lines, one at a time, no transport.
    let serial = Server::new(&r, &s, serve_opts(&cfg));
    let mut want: Vec<Vec<String>> = Vec::with_capacity(QUERIES);
    for i in 0..QUERIES {
        let mut resps = Vec::new();
        for line in query_lines(i) {
            let (resp, stop) = serial.handle_line(line.as_bytes());
            assert!(!stop);
            let encoded = resp.encode();
            assert!(encoded.contains("\"ok\":true"), "serial {i}: {encoded}");
            resps.push(encoded);
        }
        want.push(resps);
    }

    let server = Server::new(&r, &s, serve_opts(&cfg));
    let got: Mutex<Vec<Option<Vec<String>>>> = Mutex::new(vec![None; QUERIES]);
    let (stats, ()) = with_listener(&server, &fast_topts(), |addr, _| {
        std::thread::scope(|scope| {
            for c in 0..CONNS {
                let got = &got;
                scope.spawn(move || {
                    let mut client = Client::connect(addr);
                    for i in (0..QUERIES).filter(|i| i % CONNS == c) {
                        let mut resps = Vec::new();
                        for line in query_lines(i) {
                            let resp = client.request(&line);
                            assert!(resp.contains("\"ok\":true"), "query {i} over tcp: {resp}");
                            resps.push(resp);
                        }
                        got.lock().unwrap()[i] = Some(resps);
                    }
                });
            }
        });
    });
    assert!(stats.accepted >= CONNS as u64, "all connections admitted");
    assert_eq!(stats.rejected, 0, "nothing hit the cap");
    assert!(
        stats.requests >= QUERIES as u64,
        "every query line counted: {stats:?}"
    );

    let got = got.into_inner().unwrap();
    for (i, (want, got)) in want.iter().zip(got.iter()).enumerate() {
        let got = got.as_ref().unwrap_or_else(|| panic!("query {i} ran"));
        assert_eq!(want.len(), got.len(), "query {i}: response count");
        for (w, g) in want.iter().zip(got) {
            if let Some(suffix) = w.find("\"results\":").map(|_| results_suffix(w)) {
                assert_eq!(
                    suffix,
                    results_suffix(g),
                    "query {i}: socket results identical to serial"
                );
            } else {
                // Lines without results (open/close acks) carry no
                // contention-variable fields: full equality.
                assert_eq!(w, g, "query {i}: ack identical to serial");
            }
        }
    }
}

/// The `max_conns` cap refuses the excess connection with one
/// structured error line, and a slot freed by a departing client is
/// reusable.
#[test]
fn connection_cap_rejects_excess_then_recovers() {
    let (r, s) = workload();
    let cfg = JoinConfig::default();
    let server = Server::new(&r, &s, serve_opts(&cfg));
    let topts = TransportOptions {
        max_conns: 2,
        ..fast_topts()
    };
    let (stats, ()) = with_listener(&server, &topts, |addr, _| {
        let mut a = Client::connect(addr);
        let mut b = Client::connect(addr);
        // A served response proves each occupies a handler slot.
        assert!(a.request("{\"op\":\"stats\"}").contains("\"ok\":true"));
        assert!(b.request("{\"op\":\"stats\"}").contains("\"ok\":true"));

        let mut over = Client::connect(addr);
        let refusal = over.read_line().expect("refusal line");
        assert!(
            refusal.contains("\"ok\":false")
                && refusal.contains("server at capacity: 2 connections"),
            "structured rejection: {refusal}"
        );
        assert!(over.at_eof(), "refused connection is closed");

        // Free a slot; the next client must eventually be admitted
        // (the handler notices the close on its next poll tick).
        drop(a);
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let mut retry = Client::connect(addr);
            let line = retry.read_line_or_request();
            if line.contains("\"ok\":true") {
                break;
            }
            assert!(
                line.contains("server at capacity"),
                "either admitted or capacity-refused: {line}"
            );
            assert!(
                Instant::now() < deadline,
                "freed slot never became reusable"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        drop(b);
    });
    assert!(stats.rejected >= 1, "the cap fired: {stats:?}");
    assert!(stats.accepted >= 3, "admissions resumed: {stats:?}");
}

impl Client {
    /// Sends a stats request best-effort and returns whatever line
    /// comes back — the served response or a pre-queued refusal (whose
    /// connection the server already closed, so the write may fail).
    fn read_line_or_request(&mut self) -> String {
        let _ = self.stream.write_all(b"{\"op\":\"stats\"}\n");
        self.read_line().expect("some line")
    }
}

/// A silent connection is told why and disconnected; the server keeps
/// serving others.
#[test]
fn idle_connection_is_disconnected_with_a_structured_error() {
    let (r, s) = workload();
    let cfg = JoinConfig::default();
    let server = Server::new(&r, &s, serve_opts(&cfg));
    let topts = TransportOptions {
        idle_timeout: Duration::from_millis(100),
        ..fast_topts()
    };
    let (stats, ()) = with_listener(&server, &topts, |addr, _| {
        let mut idle = Client::connect(addr);
        assert!(idle.request("{\"op\":\"stats\"}").contains("\"ok\":true"));
        // Now go silent; the server must speak first.
        let line = idle.read_line().expect("timeout line");
        assert!(
            line.contains("\"ok\":false") && line.contains("idle timeout"),
            "structured idle disconnect: {line}"
        );
        assert!(idle.at_eof(), "idle connection is closed");
        // The transport is still alive for a prompt client.
        let mut fresh = Client::connect(addr);
        assert!(fresh.request("{\"op\":\"stats\"}").contains("\"ok\":true"));
    });
    assert!(stats.idle_disconnects >= 1, "idle timeout fired: {stats:?}");
}

/// `max_request_bytes` holds at the socket layer: a complete oversized
/// line is a survivable structured error, an unterminated oversized
/// stream is refused before it buffers without bound.
#[test]
fn oversized_requests_are_bounded_at_the_socket() {
    let (r, s) = workload();
    let cfg = JoinConfig::default();
    let server = Server::new(
        &r,
        &s,
        ServeOptions {
            max_request_bytes: 256,
            ..serve_opts(&cfg)
        },
    );
    let (stats, ()) = with_listener(&server, &fast_topts(), |addr, _| {
        // A complete-but-oversized line: the codec refuses it, the
        // connection survives.
        let mut client = Client::connect(addr);
        let fat = format!("{{\"op\":\"kdj\",\"id\":\"{}\",\"k\":8}}", "x".repeat(300));
        let resp = client.request(&fat);
        assert!(
            resp.contains("\"ok\":false") && resp.contains("exceeds the 256-byte cap"),
            "structured oversize error: {resp}"
        );
        assert!(
            client.request("{\"op\":\"stats\"}").contains("\"ok\":true"),
            "connection survives a complete oversized line"
        );

        // An unterminated oversized stream: refused and disconnected
        // before the line can grow without bound.
        let mut hog = Client::connect(addr);
        hog.stream
            .write_all(&vec![b'x'; 1000])
            .expect("write flood");
        let line = hog.read_line().expect("refusal line");
        assert!(
            line.contains("\"ok\":false")
                && line.contains("unterminated request exceeds 256 bytes"),
            "structured flood refusal: {line}"
        );
        assert!(hog.at_eof(), "flooding connection is closed");
    });
    assert!(
        stats.oversize_disconnects >= 1,
        "flood disconnect counted: {stats:?}"
    );
}

/// External stop (the CLI's SIGINT path) drains in-flight cursors into
/// a checkpoint directory; a restarted server resumes them over a new
/// socket and the remaining stream is bit-identical to the
/// uninterrupted serial one.
#[test]
fn stop_checkpoint_restart_resume_over_tcp_is_bit_identical() {
    let (r, s) = workload();
    let cfg = JoinConfig::default();
    let dir = std::env::temp_dir().join(format!("amdj-serve-socket-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Uninterrupted serial stream: open once, pull to exhaustion.
    let serial = Server::new(&r, &s, serve_opts(&cfg));
    let open = "{\"op\":\"idj_open\",\"id\":\"c\",\"take\":60}";
    let pull = "{\"op\":\"idj_pull\",\"id\":\"c\",\"n\":15}";
    let (resp, _) = serial.handle_line(open.as_bytes());
    assert!(resp.encode().contains("\"ok\":true"));
    let mut want = Vec::new();
    loop {
        let (resp, _) = serial.handle_line(pull.as_bytes());
        let line = resp.encode();
        assert!(line.contains("\"ok\":true"), "serial pull: {line}");
        let done = line.contains("\"done\":true");
        want.push(line);
        if done {
            break;
        }
    }
    assert_eq!(want.len(), 4, "60 results in four 15-pulls");

    // Live server 1: open and pull the first window over TCP, then the
    // operator interrupts.
    let server1 = Server::new(&r, &s, serve_opts(&cfg));
    let (_, ()) = with_listener(&server1, &fast_topts(), |addr, _| {
        let mut client = Client::connect(addr);
        assert!(client.request(open).contains("\"ok\":true"));
        let first = client.request(pull);
        assert_eq!(
            results_suffix(&want[0]),
            results_suffix(&first),
            "first window over tcp matches serial"
        );
        // with_listener raises the external stop on exit — the SIGINT
        // path — and the scoped handlers drain before it returns.
    });
    let ids = server1
        .checkpoint_open_cursors(&dir)
        .expect("shutdown checkpoint");
    assert_eq!(ids, vec!["c"], "the open cursor checkpointed");

    // Restart: fresh server, resume from the state dir, keep pulling
    // over a fresh socket.
    let server2 = Server::new(&r, &s, serve_opts(&cfg));
    let resumed = server2.resume_cursors_from(&dir).expect("resume");
    assert_eq!(resumed, vec!["c"], "the checkpointed cursor resumed");
    let (_, ()) = with_listener(&server2, &fast_topts(), |addr, _| {
        let mut client = Client::connect(addr);
        for expected in &want[1..] {
            let resp = client.request(pull);
            assert_eq!(
                results_suffix(expected),
                results_suffix(&resp),
                "resumed window over tcp matches the uninterrupted stream"
            );
        }
    });
    let _ = std::fs::remove_dir_all(&dir);
}

/// The `shutdown` op stops the whole transport from a client, without
/// the external stop flag ever rising.
#[test]
fn shutdown_op_over_tcp_stops_the_listener() {
    let (r, s) = workload();
    let cfg = JoinConfig::default();
    let server = Server::new(&r, &s, serve_opts(&cfg));
    let (stats, ()) = with_listener(&server, &fast_topts(), |addr, stop| {
        let mut client = Client::connect(addr);
        assert!(client.request("{\"op\":\"stats\"}").contains("\"ok\":true"));
        let ack = client.request("{\"op\":\"shutdown\"}");
        assert_eq!(ack, "{\"ok\":true,\"op\":\"shutdown\"}");
        assert!(client.at_eof(), "connection closed after shutdown ack");
        // The listener must return on its own — the external stop (the
        // SIGINT flag in the CLI) never rose, which is how the caller
        // tells a client-requested shutdown (exit 0) from an interrupt
        // (exit 75).
        assert!(
            !stop.load(Ordering::Relaxed),
            "shutdown op does not involve the external stop flag"
        );
    });
    assert!(stats.requests >= 2, "both requests served: {stats:?}");
}
