//! Checkpoint/resume proofs for the resumable join entry points.
//!
//! The engine promises that an interrupted-and-resumed join returns the
//! same result stream, bit for bit, as an uninterrupted one — across
//! pruning policies, thread counts, and wherever the interrupt lands
//! (mid-stage-one, mid-stage-two, mid-compensation-replay). These tests
//! drive [`kdj_resumable`]/[`idj_resumable`] through a [`PauseCtl`] with
//! small expansion budgets so suspensions hit every phase of the join,
//! roundtrip each snapshot through its wire encoding, and resume at a
//! *different* thread count each episode: an N-thread snapshot must
//! resume at M threads.
//!
//! Distances are compared by bit pattern, ids exactly (continuous random
//! rectangles make distance ties measure-zero).

use amdj_core::{
    idj_resumable, kdj_resumable, read_checkpoint, write_checkpoint, AmIdjOptions, Checkpointed,
    EngineSnapshot, JoinConfig, JoinOutput, PauseCtl, ResultPair, SnapshotError, TestSchedule,
};
use amdj_geom::Rect;
use amdj_rtree::{RTree, RTreeParams};
use proptest::prelude::*;

fn arb_dataset(max_n: usize) -> impl Strategy<Value = Vec<(Rect<2>, u64)>> {
    prop::collection::vec(
        (0.0..1000.0f64, 0.0..1000.0f64, 0.0..5.0f64, 0.0..5.0f64),
        1..max_n,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (x, y, w, h))| (Rect::new([x, y], [x + w, y + h]), i as u64))
            .collect()
    })
}

fn trees(a: &[(Rect<2>, u64)], b: &[(Rect<2>, u64)]) -> (RTree<2>, RTree<2>) {
    (
        RTree::bulk_load(RTreeParams::for_tests(), a.to_vec()),
        RTree::bulk_load(RTreeParams::for_tests(), b.to_vec()),
    )
}

fn canonical(mut v: Vec<ResultPair>) -> Vec<ResultPair> {
    v.sort_by(|a, b| {
        a.dist
            .total_cmp(&b.dist)
            .then_with(|| a.r.cmp(&b.r))
            .then_with(|| a.s.cmp(&b.s))
    });
    v
}

fn assert_identical(
    label: &str,
    want: &[ResultPair],
    got: &[ResultPair],
) -> Result<(), TestCaseError> {
    prop_assert_eq!(want.len(), got.len(), "{}: result count", label);
    for (i, (a, b)) in want.iter().zip(got.iter()).enumerate() {
        prop_assert_eq!(
            a.dist.to_bits(),
            b.dist.to_bits(),
            "{}: rank {} distance",
            label,
            i
        );
        prop_assert_eq!((a.r, a.s), (b.r, b.s), "{}: rank {} ids", label, i);
    }
    Ok(())
}

/// What an episode loop saw on the way to completion: how often the
/// pause fired and which stages the snapshots were cut in.
struct EpisodeLog {
    suspensions: usize,
    stages: Vec<u32>,
}

/// Runs a resumable kdj to completion as a sequence of episodes. Every
/// episode gets a fresh pause control with `budget` expansions; each
/// suspension's snapshot is roundtripped through its wire encoding and
/// resumed with the *next* thread count in `threads_cycle`.
#[allow(clippy::too_many_arguments)]
fn kdj_episodes(
    r: &RTree<2>,
    s: &RTree<2>,
    k: usize,
    cfg: &JoinConfig,
    aggressive: bool,
    budget: u64,
    threads_cycle: &[usize],
    schedule: Option<TestSchedule>,
) -> (JoinOutput, EpisodeLog) {
    let mut resume: Option<EngineSnapshot<2>> = None;
    let mut log = EpisodeLog {
        suspensions: 0,
        stages: Vec::new(),
    };
    for episode in 0.. {
        assert!(episode < 100_000, "episode loop failed to converge");
        let ctl = PauseCtl::every(budget);
        let threads = threads_cycle[episode % threads_cycle.len()];
        let out = kdj_resumable(
            r,
            s,
            k,
            cfg,
            aggressive,
            threads,
            schedule,
            resume.take(),
            Some(&ctl),
        )
        .expect("episode snapshot must validate");
        match out {
            Checkpointed::Done(out) => return (out, log),
            Checkpointed::Suspended(snap, _) => {
                log.suspensions += 1;
                log.stages.push(snap.stage());
                let decoded =
                    EngineSnapshot::decode(&snap.encode()).expect("snapshot must roundtrip");
                resume = Some(decoded);
            }
        }
    }
    unreachable!()
}

/// [`kdj_episodes`] for the incremental join.
#[allow(clippy::too_many_arguments)]
fn idj_episodes(
    r: &RTree<2>,
    s: &RTree<2>,
    take: usize,
    cfg: &JoinConfig,
    opts: &AmIdjOptions,
    budget: u64,
    threads_cycle: &[usize],
    schedule: Option<TestSchedule>,
) -> (JoinOutput, EpisodeLog) {
    let mut resume: Option<EngineSnapshot<2>> = None;
    let mut log = EpisodeLog {
        suspensions: 0,
        stages: Vec::new(),
    };
    for episode in 0.. {
        assert!(episode < 100_000, "episode loop failed to converge");
        let ctl = PauseCtl::every(budget);
        let threads = threads_cycle[episode % threads_cycle.len()];
        let out = idj_resumable(
            r,
            s,
            take,
            cfg,
            opts,
            threads,
            schedule,
            resume.take(),
            Some(&ctl),
        )
        .expect("episode snapshot must validate");
        match out {
            Checkpointed::Done(out) => return (out, log),
            Checkpointed::Suspended(snap, _) => {
                log.suspensions += 1;
                log.stages.push(snap.stage());
                let decoded =
                    EngineSnapshot::decode(&snap.encode()).expect("snapshot must roundtrip");
                resume = Some(decoded);
            }
        }
    }
    unreachable!()
}

fn uninterrupted_kdj(r: &RTree<2>, s: &RTree<2>, k: usize, aggressive: bool) -> JoinOutput {
    match kdj_resumable(
        r,
        s,
        k,
        &JoinConfig::unbounded(),
        aggressive,
        1,
        None,
        None,
        None,
    )
    .expect("no snapshot to validate")
    {
        Checkpointed::Done(out) => out,
        Checkpointed::Suspended(..) => unreachable!("no pause control was attached"),
    }
}

const CYCLES: [&[usize]; 2] = [&[1, 2, 4], &[4, 1, 3]];

proptest! {
    #![proptest_config(ProptestConfig {
        cases: amdj_tests::proptest_cases(6),
        ..ProptestConfig::default()
    })]

    /// An interrupted-and-resumed kdj is bit-identical to the
    /// uninterrupted join, for both policies, under pause budgets small
    /// enough to land in every stage, with every resume migrating to a
    /// different thread count.
    #[test]
    fn kdj_checkpoint_resume_bit_identical(
        a in arb_dataset(60),
        b in arb_dataset(60),
        k in 1usize..70,
        budget in 1u64..16,
        seed in any::<u64>(),
    ) {
        let (r, s) = trees(&a, &b);
        let schedule = Some(TestSchedule {
            seed,
            stall_one_in: 3,
            stall_spins: 16,
            force_steal_one_in: 3,
        });
        for aggressive in [false, true] {
            let reference = canonical(uninterrupted_kdj(&r, &s, k, aggressive).results);
            for cycle in CYCLES {
                // steal=false is the static-partition backend: it rides
                // the same drain-to-canonical-frontier suspend path, so
                // it must be just as resumable (forced steals in the
                // schedule are ignored when stealing is off).
                for steal in [true, false] {
                    let cfg = JoinConfig { steal, ..JoinConfig::unbounded() };
                    let (out, _log) =
                        kdj_episodes(&r, &s, k, &cfg, aggressive, budget, cycle, schedule);
                    let label = format!(
                        "kdj agg={aggressive} steal={steal} budget={budget} \
                         cycle={cycle:?} seed={seed}"
                    );
                    assert_identical(&label, &reference, &canonical(out.results))?;
                }
            }
        }
    }

    /// The incremental join under the same episode loop: pausing the
    /// stage cursor mid-flight and regrowing it elsewhere never changes
    /// the merged stream.
    #[test]
    fn idj_checkpoint_resume_bit_identical(
        a in arb_dataset(50),
        b in arb_dataset(50),
        take in 1usize..60,
        initial_k in 1u64..32,
        budget in 1u64..12,
        seed in any::<u64>(),
    ) {
        let (r, s) = trees(&a, &b);
        let opts = AmIdjOptions { initial_k, growth: 2.0, ..AmIdjOptions::default() };
        let cfg = JoinConfig::unbounded();
        let reference = {
            let out = idj_resumable(&r, &s, take, &cfg, &opts, 1, None, None, None)
                .expect("no snapshot to validate");
            match out {
                Checkpointed::Done(out) => canonical(out.results),
                Checkpointed::Suspended(..) => unreachable!("no pause control was attached"),
            }
        };
        let schedule = Some(TestSchedule {
            seed,
            stall_one_in: 3,
            stall_spins: 16,
            force_steal_one_in: 3,
        });
        for cycle in CYCLES {
            for steal in [true, false] {
                let cfg = JoinConfig { steal, ..JoinConfig::unbounded() };
                let (out, _log) =
                    idj_episodes(&r, &s, take, &cfg, &opts, budget, cycle, schedule);
                let label = format!("idj steal={steal} budget={budget} cycle={cycle:?} seed={seed}");
                assert_identical(&label, &reference, &canonical(out.results))?;
            }
        }
    }
}

fn grid(n: usize, phase: f64) -> Vec<(Rect<2>, u64)> {
    (0..n * n)
        .map(|i| {
            let x = (i % n) as f64 * 1.618 + (i as f64 * 0.0137 + phase).sin();
            let y = (i / n) as f64 * 2.414 + (i as f64 * 0.0271 + phase).cos();
            (Rect::new([x, y], [x, y]), i as u64)
        })
        .collect()
}

/// A budget-1 pause fires at every expansion — stage-one expansions,
/// stage-two expansions, and compensation replays alike — so the
/// episode loop's snapshots must cover both stages of the aggressive
/// join: some cut mid-stage-one, some mid-stage-two (i.e.
/// mid-compensation-replay — stage two's work pool carries the parked
/// entries). A uniform R against a clustered S makes the Equation 3
/// estimate miss on part of the answer, so the aggressive join carries
/// real work into stage two. Guards against interrupt points silently
/// collapsing onto stage boundaries.
#[test]
fn interrupts_land_in_both_stages() {
    let universe = amdj_datagen::unit_universe();
    let a = amdj_datagen::uniform_points(3000, universe, 7);
    let b = amdj_datagen::clustered_points(3000, 16, 0.02, universe, 8);
    let params = RTreeParams::paper_defaults;
    let r = RTree::bulk_load(params(), a);
    let s = RTree::bulk_load(params(), b);
    let reference = canonical(uninterrupted_kdj(&r, &s, 200, true).results);
    let (out, log) = kdj_episodes(
        &r,
        &s,
        200,
        &JoinConfig::unbounded(),
        true,
        5,
        &[1, 2],
        None,
    );
    assert_eq!(canonical(out.results), reference);
    assert!(log.suspensions > 2, "budget-1 pause barely fired");
    assert!(
        log.stages.contains(&1),
        "no snapshot was cut in stage one: {:?}",
        log.stages
    );
    assert!(
        log.stages.contains(&2),
        "no snapshot was cut in stage two: {:?}",
        log.stages
    );
}

/// The static-partition backend (steal=false) rides the same
/// drain-to-canonical-frontier suspend path as the stealing one: an
/// interrupted static run resumes bit-identically across thread counts,
/// and no episode ever steals a pair.
#[test]
fn static_backend_checkpoint_resume_bit_identical() {
    let (r, s) = trees(&grid(12, 0.4), &grid(12, 1.3));
    let k = 120;
    let reference = canonical(uninterrupted_kdj(&r, &s, k, true).results);
    let cfg = JoinConfig {
        steal: false,
        ..JoinConfig::unbounded()
    };
    let (out, log) = kdj_episodes(&r, &s, k, &cfg, true, 7, &[2, 4, 1], None);
    assert_eq!(canonical(out.results), reference);
    assert!(log.suspensions > 0, "pause budget never fired");
    assert_eq!(out.stats.pairs_stolen, 0, "steal=false must never steal");
    assert_eq!(out.stats.steal_attempts, 0, "steal=false must never probe");
}

/// A snapshot survives the disk: write-then-rename out, validated read
/// back in, resumed to the uninterrupted answer. Mismatched resume
/// parameters are rejected up front instead of corrupting the join.
#[test]
fn disk_roundtrip_and_resume_validation() {
    let (r, s) = trees(&grid(12, 0.4), &grid(12, 0.9));
    let k = 80;
    let reference = canonical(uninterrupted_kdj(&r, &s, k, true).results);

    let ctl = PauseCtl::every(5);
    let cfg = JoinConfig::unbounded();
    let snap = match kdj_resumable(&r, &s, k, &cfg, true, 2, None, None, Some(&ctl))
        .expect("nothing to validate")
    {
        Checkpointed::Suspended(snap, _) => *snap,
        Checkpointed::Done(_) => panic!("join outran a 5-expansion pause budget"),
    };

    let path = std::env::temp_dir().join(format!("amdj-ckpt-test-{}.snap", std::process::id()));
    write_checkpoint(&path, &snap).expect("checkpoint write");
    let reloaded: EngineSnapshot<2> = read_checkpoint(&path)
        .expect("checkpoint read")
        .expect("checkpoint decode");
    std::fs::remove_file(&path).ok();

    // Mismatched parameters are validation errors, not corruption.
    let wrong_k = kdj_resumable(
        &r,
        &s,
        k + 1,
        &cfg,
        true,
        1,
        None,
        Some(EngineSnapshot::decode(&reloaded.encode()).unwrap()),
        None,
    );
    assert!(matches!(wrong_k, Err(SnapshotError::Invalid(_))));
    let wrong_policy = kdj_resumable(
        &r,
        &s,
        k,
        &cfg,
        false,
        1,
        None,
        Some(EngineSnapshot::decode(&reloaded.encode()).unwrap()),
        None,
    );
    assert!(matches!(wrong_policy, Err(SnapshotError::Invalid(_))));
    let wrong_kind = idj_resumable(
        &r,
        &s,
        k,
        &cfg,
        &AmIdjOptions::default(),
        1,
        None,
        Some(EngineSnapshot::decode(&reloaded.encode()).unwrap()),
        None,
    );
    assert!(matches!(wrong_kind, Err(SnapshotError::Invalid(_))));

    // The matching resume finishes the join bit-identically.
    let out = match kdj_resumable(&r, &s, k, &cfg, true, 3, None, Some(reloaded), None)
        .expect("snapshot must validate")
    {
        Checkpointed::Done(out) => out,
        Checkpointed::Suspended(..) => unreachable!("no pause control on the resume"),
    };
    assert_eq!(canonical(out.results), reference);
}
