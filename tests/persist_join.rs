//! Persisted-index join parity: a tree saved to disk and loaded back
//! must drive every join to the same answer, bit for bit, as the
//! original in-memory build. The persistence format keeps page images
//! (and page ids) byte-identical, so this also holds for engine
//! snapshots — a checkpoint taken against the original trees resumes
//! against reloaded copies, which is what makes an on-disk checkpoint
//! durable across process restarts.

use amdj_core::{
    b_kdj, idj_resumable, kdj_resumable, AmIdjOptions, Checkpointed, JoinConfig, JoinOutput,
    PauseCtl, ResultPair,
};
use amdj_geom::Rect;
use amdj_rtree::{RTree, RTreeParams};

fn dataset(n: usize, phase: f64) -> Vec<(Rect<2>, u64)> {
    (0..n)
        .map(|i| {
            let x = (i as f64 * 0.737 + phase).sin() * 500.0 + 500.0;
            let y = (i as f64 * 0.391 + phase).cos() * 500.0 + 500.0;
            let w = ((i * 7) % 11) as f64 * 0.5;
            let h = ((i * 13) % 7) as f64 * 0.5;
            (Rect::new([x, y], [x + w, y + h]), i as u64)
        })
        .collect()
}

fn persisted_copy(t: &RTree<2>, name: &str) -> RTree<2> {
    let path =
        std::env::temp_dir().join(format!("amdj-persist-join-{}-{name}", std::process::id()));
    t.save_to_path(&path).expect("save tree");
    let back = RTree::load_from_path(&path, t.params().clone()).expect("load tree");
    std::fs::remove_file(&path).ok();
    back.validate().expect("loaded tree valid");
    back
}

fn assert_bit_identical(label: &str, want: &[ResultPair], got: &[ResultPair]) {
    assert_eq!(want.len(), got.len(), "{label}: result count");
    for (i, (a, b)) in want.iter().zip(got.iter()).enumerate() {
        assert_eq!(
            a.dist.to_bits(),
            b.dist.to_bits(),
            "{label}: rank {i} distance"
        );
        assert_eq!((a.r, a.s), (b.r, b.s), "{label}: rank {i} ids");
    }
}

fn resumable_kdj(
    r: &RTree<2>,
    s: &RTree<2>,
    k: usize,
    aggressive: bool,
    threads: usize,
) -> JoinOutput {
    let cfg = JoinConfig::unbounded();
    match kdj_resumable(r, s, k, &cfg, aggressive, threads, None, None, None)
        .expect("no snapshot to validate")
    {
        Checkpointed::Done(out) => out,
        Checkpointed::Suspended(..) => unreachable!("no pause control was attached"),
    }
}

/// Both trees through a save/load cycle, then every join flavour: the
/// reloaded indexes answer bit-identically to the in-memory ones.
#[test]
fn reloaded_trees_join_bit_identically() {
    let r = RTree::bulk_load(RTreeParams::for_tests(), dataset(900, 0.2));
    let s = RTree::bulk_load(RTreeParams::for_tests(), dataset(900, 1.7));
    let r2 = persisted_copy(&r, "r");
    let s2 = persisted_copy(&s, "s");

    let cfg = JoinConfig::unbounded();
    let k = 150;

    let mem = b_kdj(&r, &s, k, &cfg);
    let disk = b_kdj(&r2, &s2, k, &cfg);
    assert_bit_identical("b_kdj", &mem.results, &disk.results);

    for aggressive in [false, true] {
        for threads in [1, 4] {
            let mem = resumable_kdj(&r, &s, k, aggressive, threads);
            let disk = resumable_kdj(&r2, &s2, k, aggressive, threads);
            assert_bit_identical(
                &format!("kdj agg={aggressive} threads={threads}"),
                &mem.results,
                &disk.results,
            );
        }
    }

    let idj = |r: &RTree<2>, s: &RTree<2>| -> JoinOutput {
        match idj_resumable(
            r,
            s,
            120,
            &cfg,
            &AmIdjOptions::default(),
            1,
            None,
            None,
            None,
        )
        .expect("no snapshot to validate")
        {
            Checkpointed::Done(out) => out,
            Checkpointed::Suspended(..) => unreachable!("no pause control was attached"),
        }
    };
    assert_bit_identical("idj stream", &idj(&r, &s).results, &idj(&r2, &s2).results);
}

/// A checkpoint cut against the original trees resumes against reloaded
/// copies: the snapshot's frontier references pages by id, and the
/// persistence format preserves page ids exactly.
#[test]
fn checkpoint_resumes_against_reloaded_trees() {
    let r = RTree::bulk_load(RTreeParams::for_tests(), dataset(900, 0.2));
    let s = RTree::bulk_load(RTreeParams::for_tests(), dataset(900, 1.7));
    let k = 150;
    let cfg = JoinConfig::unbounded();
    let reference = resumable_kdj(&r, &s, k, true, 1);

    let ctl = PauseCtl::every(10);
    let snap = match kdj_resumable(&r, &s, k, &cfg, true, 2, None, None, Some(&ctl))
        .expect("nothing to validate")
    {
        Checkpointed::Suspended(snap, _) => *snap,
        Checkpointed::Done(_) => panic!("join outran a 10-expansion pause budget"),
    };

    let r2 = persisted_copy(&r, "ckpt-r");
    let s2 = persisted_copy(&s, "ckpt-s");
    let out = match kdj_resumable(&r2, &s2, k, &cfg, true, 2, None, Some(snap), None)
        .expect("snapshot must validate")
    {
        Checkpointed::Done(out) => out,
        Checkpointed::Suspended(..) => unreachable!("no pause control on the resume"),
    };
    assert_bit_identical("resume on reloaded trees", &reference.results, &out.results);
}
