//! Concurrency end-to-end validation: the parallel joins must reproduce
//! their sequential counterparts bit-for-bit — B-KDJ directly, AM-KDJ
//! under every `eDmax` estimate (including badly under-estimated ones that
//! force the compensation stage) — and independent joins must be able to
//! share a pair of trees across threads.

use amdj_core::{
    am_kdj, b_kdj, hs_kdj, par_am_idj, par_am_kdj, par_b_kdj, AmIdj, AmIdjOptions, AmKdjOptions,
    JoinConfig, MinBound, ResultPair,
};
use amdj_geom::Rect;
use amdj_rtree::{RTree, RTreeParams};
use amdj_storage::CostModel;
use proptest::prelude::*;

fn arb_dataset(max_n: usize) -> impl Strategy<Value = Vec<(Rect<2>, u64)>> {
    prop::collection::vec(
        (0.0..1000.0f64, 0.0..1000.0f64, 0.0..5.0f64, 0.0..5.0f64),
        1..max_n,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (x, y, w, h))| (Rect::new([x, y], [x + w, y + h]), i as u64))
            .collect()
    })
}

fn trees(a: &[(Rect<2>, u64)], b: &[(Rect<2>, u64)]) -> (RTree<2>, RTree<2>) {
    (
        RTree::bulk_load(RTreeParams::for_tests(), a.to_vec()),
        RTree::bulk_load(RTreeParams::for_tests(), b.to_vec()),
    )
}

/// Both joins promise exact answers; pair *sets* must therefore agree
/// whenever distances are tie-free. Sorting both sides by the canonical
/// `(dist, r, s)` key removes the only legitimate divergence (tie order at
/// equal distance) and then the comparison is byte-identical: same object
/// ids, same `f64` bits.
fn canonical(mut v: Vec<ResultPair>) -> Vec<ResultPair> {
    v.sort_by(|a, b| {
        a.dist
            .total_cmp(&b.dist)
            .then_with(|| a.r.cmp(&b.r))
            .then_with(|| a.s.cmp(&b.s))
    });
    v
}

fn assert_identical(seq: &[ResultPair], par: &[ResultPair]) -> Result<(), TestCaseError> {
    prop_assert_eq!(seq.len(), par.len());
    let seq = canonical(seq.to_vec());
    let par = canonical(par.to_vec());
    for (i, (a, b)) in seq.iter().zip(par.iter()).enumerate() {
        prop_assert_eq!(a.dist.to_bits(), b.dist.to_bits(), "rank {}", i);
        // Ids may legitimately differ only when the boundary distance
        // ties; random continuous rectangles make that measure-zero, so
        // any mismatch here is a real partitioning bug.
        prop_assert_eq!((a.r, a.s), (b.r, b.s), "rank {}", i);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn par_bkdj_identical_to_sequential(
        a in arb_dataset(120),
        b in arb_dataset(120),
        k in 1usize..200,
        threads in 1usize..7,
    ) {
        let (r, s) = trees(&a, &b);
        let seq = b_kdj(&r, &s, k, &JoinConfig::unbounded());
        let par = par_b_kdj(&r, &s, k, &JoinConfig::unbounded(), threads);
        assert_identical(&seq.results, &par.results)?;
    }

    #[test]
    fn par_bkdj_identical_under_memory_budget(
        a in arb_dataset(90),
        b in arb_dataset(90),
        k in 1usize..120,
        mem_kb in 1usize..32,
    ) {
        let (r, s) = trees(&a, &b);
        let cfg = JoinConfig {
            queue_mem_bytes: mem_kb * 1024,
            queue_cost: CostModel { page_size: 1024, ..CostModel::paper_1999_disk() },
            ..JoinConfig::default()
        };
        let seq = b_kdj(&r, &s, k, &JoinConfig::unbounded());
        let par = par_b_kdj(&r, &s, k, &cfg, 4);
        assert_identical(&seq.results, &par.results)?;
    }

    /// The headline exactness property: parallel AM-KDJ equals sequential
    /// AM-KDJ for every thread count, with the estimator-driven eDmax.
    #[test]
    fn par_amkdj_identical_to_sequential(
        a in arb_dataset(110),
        b in arb_dataset(110),
        k in 1usize..160,
        threads in (0usize..4).prop_map(|i| [1usize, 2, 3, 8][i]),
    ) {
        let (r, s) = trees(&a, &b);
        let opts = AmKdjOptions::default();
        let seq = am_kdj(&r, &s, k, &JoinConfig::unbounded(), &opts);
        let par = par_am_kdj(&r, &s, k, &JoinConfig::unbounded(), &opts, threads);
        assert_identical(&seq.results, &par.results)?;
    }

    /// Under- and over-estimated eDmax: scaling the true k-th distance by
    /// a factor below 1 forces the compensation stage, a factor above 1
    /// makes stage one near-exhaustive — the answer must not move.
    #[test]
    fn par_amkdj_identical_under_bad_edmax(
        a in arb_dataset(90),
        b in arb_dataset(90),
        k in 1usize..100,
        threads in (0usize..4).prop_map(|i| [1usize, 2, 3, 8][i]),
        factor in (0usize..6).prop_map(|i| [0.0, 0.1, 0.5, 0.9, 1.5, 10.0][i]),
    ) {
        let (r, s) = trees(&a, &b);
        let exact = b_kdj(&r, &s, k, &JoinConfig::unbounded());
        let Some(last) = exact.results.last() else { return Ok(()); };
        let opts = AmKdjOptions { edmax_override: Some(last.dist * factor) };
        let seq = am_kdj(&r, &s, k, &JoinConfig::unbounded(), &opts);
        let par = par_am_kdj(&r, &s, k, &JoinConfig::unbounded(), &opts, threads);
        assert_identical(&exact.results, &seq.results)?;
        assert_identical(&seq.results, &par.results)?;
    }

    /// The parallel incremental join returns the same pair set as the
    /// sequential cursor's first `take` emissions.
    #[test]
    fn par_amidj_identical_to_sequential_cursor(
        a in arb_dataset(80),
        b in arb_dataset(80),
        take in 1usize..120,
        threads in (0usize..3).prop_map(|i| [1usize, 2, 4][i]),
    ) {
        let (r, s) = trees(&a, &b);
        let mut cursor = AmIdj::new(&r, &s, &JoinConfig::unbounded(), AmIdjOptions::default());
        let mut seq = Vec::new();
        while seq.len() < take {
            match cursor.next() {
                Some(p) => seq.push(p),
                None => break,
            }
        }
        let par = par_am_idj(&r, &s, take, &JoinConfig::unbounded(), &AmIdjOptions::default(), threads);
        assert_identical(&seq, &par.results)?;
    }
}

/// The shared pruning bound must be monotone non-increasing no matter how
/// many threads race on it: every published value is only accepted if it
/// tightens, so a sampled history can never loosen.
#[test]
fn shared_bound_never_loosens() {
    let bound = MinBound::new(f64::INFINITY);
    let observed = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let bound = &bound;
                scope.spawn(move || {
                    let mut history = Vec::new();
                    // Deterministic pseudo-random publish sequence per thread.
                    let mut x = 0x9e3779b97f4a7c15u64.wrapping_mul(t as u64 + 1);
                    for _ in 0..10_000 {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let v = (x % 1_000_000) as f64 / 10.0;
                        bound.tighten(v);
                        history.push(bound.get());
                    }
                    history
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("publisher panicked"))
            .collect::<Vec<_>>()
    });
    for history in &observed {
        for w in history.windows(2) {
            assert!(w[1] <= w[0], "bound loosened from {} to {}", w[0], w[1]);
        }
    }
    // All threads drew from the same value range; the final bound is the
    // global minimum any of them could have published.
    let min_published = observed
        .iter()
        .map(|h| *h.last().unwrap())
        .fold(f64::INFINITY, f64::min);
    assert_eq!(bound.get(), min_published);
    assert!(!bound.tighten(bound.get()), "equal value must not tighten");
    assert!(!bound.tighten(f64::NAN), "NaN must be ignored");
}

#[test]
fn two_joins_share_trees_across_threads() {
    let a: Vec<(Rect<2>, u64)> = (0..400)
        .map(|i| {
            let x = (i % 20) as f64 * 3.7;
            let y = (i / 20) as f64 * 2.9;
            (Rect::new([x, y], [x + 1.0, y + 1.0]), i as u64)
        })
        .collect();
    let b: Vec<(Rect<2>, u64)> = (0..400)
        .map(|i| {
            let x = (i % 20) as f64 * 3.7 + 1.3;
            let y = (i / 20) as f64 * 2.9 + 0.7;
            (Rect::new([x, y], [x + 0.8, y + 0.8]), i as u64)
        })
        .collect();
    let (r, s) = trees(&a, &b);
    let want_b = b_kdj(&r, &s, 60, &JoinConfig::unbounded());
    let want_h = hs_kdj(&r, &s, 60, &JoinConfig::unbounded());
    // Two different algorithms traverse the same trees at the same time,
    // each owning only `&RTree` — the tentpole's end-to-end smoke test.
    let (got_b, got_h) = std::thread::scope(|scope| {
        let hb = scope.spawn(|| b_kdj(&r, &s, 60, &JoinConfig::unbounded()));
        let hh = scope.spawn(|| hs_kdj(&r, &s, 60, &JoinConfig::unbounded()));
        (
            hb.join().expect("b_kdj panicked"),
            hh.join().expect("hs_kdj panicked"),
        )
    });
    assert_eq!(
        canonical(want_b.results.clone()),
        canonical(got_b.results),
        "b_kdj under concurrency"
    );
    assert_eq!(
        canonical(want_h.results),
        canonical(got_h.results),
        "hs_kdj under concurrency"
    );
}

#[test]
fn par_bkdj_more_threads_than_work() {
    let a: Vec<(Rect<2>, u64)> = (0..3)
        .map(|i| (Rect::new([i as f64, 0.0], [i as f64 + 0.5, 0.5]), i as u64))
        .collect();
    let (r, s) = trees(&a, &a);
    let out = par_b_kdj(&r, &s, 9, &JoinConfig::unbounded(), 16);
    assert_eq!(out.results.len(), 9);
    assert!(out.results.windows(2).all(|w| w[0].dist <= w[1].dist));
}
