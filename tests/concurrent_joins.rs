//! Concurrency end-to-end validation. The policy × backend parity
//! properties live in `engine_matrix.rs`; this suite keeps what the
//! matrix cannot express: the shared bound's monotonicity under racing
//! publishers, unrelated joins sharing trees across threads, and the
//! degenerate more-threads-than-work shape.

use amdj_core::{b_kdj, hs_kdj, par_b_kdj, JoinConfig, MinBound, ResultPair};
use amdj_geom::Rect;
use amdj_rtree::{RTree, RTreeParams};

fn trees(a: &[(Rect<2>, u64)], b: &[(Rect<2>, u64)]) -> (RTree<2>, RTree<2>) {
    (
        RTree::bulk_load(RTreeParams::for_tests(), a.to_vec()),
        RTree::bulk_load(RTreeParams::for_tests(), b.to_vec()),
    )
}

fn canonical(mut v: Vec<ResultPair>) -> Vec<ResultPair> {
    v.sort_by(|a, b| {
        a.dist
            .total_cmp(&b.dist)
            .then_with(|| a.r.cmp(&b.r))
            .then_with(|| a.s.cmp(&b.s))
    });
    v
}

/// The shared pruning bound must be monotone non-increasing no matter how
/// many threads race on it: every published value is only accepted if it
/// tightens, so a sampled history can never loosen.
#[test]
fn shared_bound_never_loosens() {
    let bound = MinBound::new(f64::INFINITY);
    let observed = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let bound = &bound;
                scope.spawn(move || {
                    let mut history = Vec::new();
                    // Deterministic pseudo-random publish sequence per thread.
                    let mut x = 0x9e3779b97f4a7c15u64.wrapping_mul(t as u64 + 1);
                    for _ in 0..10_000 {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let v = (x % 1_000_000) as f64 / 10.0;
                        bound.tighten(v);
                        history.push(bound.get());
                    }
                    history
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("publisher panicked"))
            .collect::<Vec<_>>()
    });
    for history in &observed {
        for w in history.windows(2) {
            assert!(w[1] <= w[0], "bound loosened from {} to {}", w[0], w[1]);
        }
    }
    // All threads drew from the same value range; the final bound is the
    // global minimum any of them could have published.
    let min_published = observed
        .iter()
        .map(|h| *h.last().unwrap())
        .fold(f64::INFINITY, f64::min);
    assert_eq!(bound.get(), min_published);
    assert!(!bound.tighten(bound.get()), "equal value must not tighten");
    assert!(!bound.tighten(f64::NAN), "NaN must be ignored");
}

#[test]
fn two_joins_share_trees_across_threads() {
    let a: Vec<(Rect<2>, u64)> = (0..400)
        .map(|i| {
            let x = (i % 20) as f64 * 3.7;
            let y = (i / 20) as f64 * 2.9;
            (Rect::new([x, y], [x + 1.0, y + 1.0]), i as u64)
        })
        .collect();
    let b: Vec<(Rect<2>, u64)> = (0..400)
        .map(|i| {
            let x = (i % 20) as f64 * 3.7 + 1.3;
            let y = (i / 20) as f64 * 2.9 + 0.7;
            (Rect::new([x, y], [x + 0.8, y + 0.8]), i as u64)
        })
        .collect();
    let (r, s) = trees(&a, &b);
    let want_b = b_kdj(&r, &s, 60, &JoinConfig::unbounded());
    let want_h = hs_kdj(&r, &s, 60, &JoinConfig::unbounded());
    // Two different algorithms traverse the same trees at the same time,
    // each owning only `&RTree` — the tentpole's end-to-end smoke test.
    let (got_b, got_h) = std::thread::scope(|scope| {
        let hb = scope.spawn(|| b_kdj(&r, &s, 60, &JoinConfig::unbounded()));
        let hh = scope.spawn(|| hs_kdj(&r, &s, 60, &JoinConfig::unbounded()));
        (
            hb.join().expect("b_kdj panicked"),
            hh.join().expect("hs_kdj panicked"),
        )
    });
    assert_eq!(
        canonical(want_b.results.clone()),
        canonical(got_b.results),
        "b_kdj under concurrency"
    );
    assert_eq!(
        canonical(want_h.results),
        canonical(got_h.results),
        "hs_kdj under concurrency"
    );
}

#[test]
fn par_bkdj_more_threads_than_work() {
    let a: Vec<(Rect<2>, u64)> = (0..3)
        .map(|i| (Rect::new([i as f64, 0.0], [i as f64 + 0.5, 0.5]), i as u64))
        .collect();
    let (r, s) = trees(&a, &a);
    let out = par_b_kdj(&r, &s, 9, &JoinConfig::unbounded(), 16);
    assert_eq!(out.results.len(), 9);
    assert!(out.results.windows(2).all(|w| w[0].dist <= w[1].dist));
}
