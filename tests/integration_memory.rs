//! Memory-budget behaviour: results must be identical under any queue
//! memory budget and any R-tree buffer size; only the I/O work may differ
//! (§4.4, §5.5).

use amdj_core::{am_kdj, b_kdj, bruteforce, AmKdjOptions, JoinConfig};
use amdj_datagen::tiger::Geography;
use amdj_rtree::{RTree, RTreeParams};
use amdj_storage::CostModel;
use amdj_tests::assert_same_distances;

fn trees_with_buffer(
    a: &amdj_datagen::Dataset,
    b: &amdj_datagen::Dataset,
    buffer: usize,
) -> (RTree<2>, RTree<2>) {
    let params = RTreeParams {
        buffer_bytes: buffer,
        ..RTreeParams::for_tests()
    };
    (
        RTree::bulk_load(params.clone(), a.clone()),
        RTree::bulk_load(params, b.clone()),
    )
}

fn tight_cfg(mem: usize) -> JoinConfig {
    JoinConfig {
        queue_mem_bytes: mem,
        queue_cost: CostModel {
            page_size: 1024,
            ..CostModel::paper_1999_disk()
        },
        ..JoinConfig::default()
    }
}

#[test]
fn results_invariant_under_queue_memory() {
    let geo = Geography::arizona_like(33);
    let a = geo.streets(1500);
    let b = geo.hydro(600);
    let k = 500;
    let want = bruteforce::k_closest_pairs(&a, &b, k);
    for mem in [2 * 1024, 16 * 1024, 1 << 22] {
        let (r, s) = trees_with_buffer(&a, &b, 64 * 1024);
        let out = b_kdj(&r, &s, k, &tight_cfg(mem));
        assert_same_distances(&out.results, &want, &format!("B-KDJ mem={mem}"));
        let out = am_kdj(&r, &s, k, &tight_cfg(mem), &AmKdjOptions::default());
        assert_same_distances(&out.results, &want, &format!("AM-KDJ mem={mem}"));
    }
}

#[test]
fn tight_queue_memory_causes_spill_io() {
    let geo = Geography::arizona_like(35);
    let a = geo.streets(2000);
    let b = geo.hydro(800);
    let k = 600;
    let (r, s) = trees_with_buffer(&a, &b, 64 * 1024);
    let tight = b_kdj(&r, &s, k, &tight_cfg(2 * 1024));
    r.clear_buffer();
    s.clear_buffer();
    let roomy = b_kdj(&r, &s, k, &tight_cfg(1 << 24));
    assert!(
        tight.stats.queue_page_writes > 0,
        "a 2 KB queue must spill (insertions: {})",
        tight.stats.mainq_insertions
    );
    assert_eq!(
        roomy.stats.queue_page_writes, 0,
        "a 16 MB queue must not spill"
    );
    assert!(tight.stats.io_seconds > roomy.stats.io_seconds);
}

#[test]
fn smaller_tree_buffer_more_disk_reads() {
    let geo = Geography::arizona_like(37);
    let a = geo.streets(2500);
    let b = geo.hydro(900);
    let k = 400;
    let (r_small, s_small) = trees_with_buffer(&a, &b, 2 * 256);
    let (r_big, s_big) = trees_with_buffer(&a, &b, 1 << 20);
    let small = b_kdj(&r_small, &s_small, k, &JoinConfig::unbounded());
    let big = b_kdj(&r_big, &s_big, k, &JoinConfig::unbounded());
    assert_eq!(
        small.stats.node_requests, big.stats.node_requests,
        "same traversal"
    );
    assert!(
        small.stats.node_disk_reads > big.stats.node_disk_reads,
        "small buffer {} vs big buffer {}",
        small.stats.node_disk_reads,
        big.stats.node_disk_reads
    );
    assert_same_distances(
        &small.results,
        &big.results,
        "buffer size changes no answer",
    );
}

#[test]
fn zero_buffer_reads_equal_requests() {
    let geo = Geography::arizona_like(39);
    let a = geo.streets(800);
    let b = geo.hydro(300);
    let (r, s) = trees_with_buffer(&a, &b, 0);
    let out = b_kdj(&r, &s, 100, &JoinConfig::unbounded());
    assert_eq!(
        out.stats.node_requests, out.stats.node_disk_reads,
        "without a buffer every request hits disk (Table 2's parenthesized column)"
    );
}
