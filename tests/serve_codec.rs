//! Fuzzing the serve-mode wire seam: the request codec and the
//! server's `handle_line` dispatch must survive anything a client can
//! throw at them — malformed JSON, truncations, random bytes, mutated
//! valid requests, oversized lines — without panicking or hanging, and
//! every failure must be a structured error whose byte offset points
//! inside the offending line (the storage codec's `try_*` discipline).
//! Well-formed requests must round-trip `decode(encode(r)) == r`.

use std::sync::OnceLock;

use amdj_core::serve::codec::{QuerySpec, Request, RequestError, Response};
use amdj_core::serve::{ServeOptions, Server};
use amdj_core::JoinConfig;
use amdj_datagen::{uniform_points, unit_universe};
use amdj_rtree::{RTree, RTreeParams};
use proptest::prelude::*;

fn arb_id() -> impl Strategy<Value = String> {
    // Printable ASCII (including quotes and backslashes) plus arbitrary
    // unicode scalars, so the JSON string escaping is exercised both
    // ways (the vendored proptest has no char/regex strategies).
    prop_oneof![
        prop::collection::vec(0u8..95, 0..12)
            .prop_map(|v| v.into_iter().map(|b| (b + 32) as char).collect::<String>()),
        prop::collection::vec(any::<u16>(), 0..6).prop_map(|v| {
            v.into_iter()
                .filter_map(|c| char::from_u32(c as u32))
                .collect::<String>()
        }),
    ]
}

fn arb_spec() -> impl Strategy<Value = QuerySpec> {
    (
        any::<bool>(),
        0u64..5,
        0u64..5,
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(
            |(aggressive, threads, partitions, has_steal, steal)| QuerySpec {
                aggressive,
                threads,
                partitions,
                steal: has_steal.then_some(steal),
            },
        )
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        (arb_id(), 0u64..200, arb_spec()).prop_map(|(id, k, spec)| Request::Kdj { id, k, spec }),
        (arb_id(), 0u64..200, arb_spec()).prop_map(|(id, take, spec)| Request::IdjOpen {
            id,
            take,
            spec
        }),
        (arb_id(), 0u64..200).prop_map(|(id, n)| Request::IdjPull { id, n }),
        arb_id().prop_map(|id| Request::IdjCheckpoint { id }),
        (
            arb_id(),
            prop::collection::vec(any::<u8>(), 0..48),
            0u64..50,
            arb_spec()
        )
            .prop_map(|(id, snapshot, delivered, spec)| Request::IdjResume {
                id,
                snapshot,
                delivered,
                spec
            }),
        arb_id().prop_map(|id| Request::IdjClose { id }),
        Just(Request::Stats),
        Just(Request::Shutdown),
    ]
}

/// A line to throw at the decoder/server: random bytes, or a valid
/// request mutated by one truncation, insertion, or byte flip.
fn arb_line() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        prop::collection::vec(any::<u8>(), 0..200),
        (arb_request(), any::<usize>(), any::<u8>(), 0u8..4).prop_map(|(req, idx, byte, mode)| {
            let mut line = req.encode().into_bytes();
            if line.is_empty() {
                return line;
            }
            let i = idx % line.len();
            match mode {
                0 => line.truncate(i),
                1 => line.insert(i, byte),
                2 => line[i] ^= byte,
                _ => {}
            }
            line
        }),
    ]
}

/// One shared tiny tree pair for the `handle_line` fuzz — the server is
/// rebuilt per case (cheap), the trees are not.
fn trees() -> &'static (RTree<2>, RTree<2>) {
    static TREES: OnceLock<(RTree<2>, RTree<2>)> = OnceLock::new();
    TREES.get_or_init(|| {
        let a = uniform_points(60, unit_universe(), 31);
        let b = uniform_points(60, unit_universe(), 32);
        (
            RTree::bulk_load(RTreeParams::for_tests(), a),
            RTree::bulk_load(RTreeParams::for_tests(), b),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: amdj_tests::proptest_cases(64),
        .. ProptestConfig::default()
    })]

    #[test]
    fn requests_round_trip_canonically(req in arb_request()) {
        let line = req.encode();
        let back = Request::decode(line.as_bytes(), 1 << 20)
            .expect("canonical encoding must decode");
        prop_assert_eq!(back, req, "round-trip through {}", line);
    }

    #[test]
    fn decode_never_panics_and_errors_stay_in_bounds(line in arb_line()) {
        match Request::decode(&line, 1 << 20) {
            Ok(req) => {
                // Whatever decoded must itself round-trip.
                let canon = req.encode();
                let back = Request::decode(canon.as_bytes(), 1 << 20)
                    .expect("re-encoded request decodes");
                prop_assert_eq!(back, req);
            }
            Err(RequestError::Bad(e)) => {
                prop_assert!(
                    e.offset <= line.len(),
                    "offset {} beyond line length {}",
                    e.offset,
                    line.len()
                );
                prop_assert!(!e.expected.is_empty(), "errors name what was expected");
            }
            Err(RequestError::TooLarge { .. }) => {
                prop_assert!(line.len() > 1 << 20, "TooLarge only past the cap");
            }
        }
    }

    #[test]
    fn oversized_lines_are_refused_before_parsing(extra in 1usize..64) {
        let line = vec![b'{'; 32 + extra];
        prop_assert_eq!(
            Request::decode(&line, 32),
            Err(RequestError::TooLarge { len: 32 + extra, max: 32 })
        );
    }

    #[test]
    fn handle_line_always_answers_with_a_structured_line(lines in prop::collection::vec(arb_line(), 1..8)) {
        let (r, s) = trees();
        let server = Server::new(r, s, ServeOptions {
            base_config: JoinConfig::default(),
            ..ServeOptions::default()
        });
        for line in &lines {
            // Never panics, never hangs: every line gets one response.
            let (resp, _shutdown) = server.handle_line(line);
            let encoded = resp.encode();
            prop_assert!(encoded.starts_with('{'), "responses are JSON lines");
            prop_assert!(!encoded.contains('\n'), "responses are single lines");
            if let Response::Error { error, .. } = &resp {
                prop_assert!(!error.is_empty(), "errors carry a cause");
            }
        }
        // The session stays usable after arbitrary garbage.
        let (resp, _) = server.handle_line(br#"{"op":"stats"}"#);
        prop_assert!(matches!(resp, Response::Stats { .. }), "stats still answers");
    }
}
