//! The partitioned plan matrix: with [`JoinConfig::partitions`] set, the
//! k-distance join executes as STR tiles × bounds-only partition-pair
//! pruning × per-pair engine invocations — and must stay bit-identical
//! to the monolithic plan across every partition count × pruning policy
//! × execution backend cell, while the pruned-pair ledger
//! (`pruned == replayed + never_needed`) balances in every cell. Unit
//! tests pin the two compensation regimes the property sweep cannot
//! force deterministically: a deliberately under-estimated bound that
//! prunes every pair and must replay them all to stay exact, and an
//! over-estimated-but-sufficient bound whose pruned pairs are all
//! conclusively discarded against the proven merged k-th distance.
//!
//! [`JoinConfig::partitions`]: amdj_core::JoinConfig::partitions

use amdj_core::engine::{self, Aggressive, Exact, Parallel, Sequential};
use amdj_core::{bruteforce, JoinConfig, JoinOutput, ResultPair};
use amdj_geom::Rect;
use amdj_rtree::{RTree, RTreeParams};
use proptest::prelude::*;

fn arb_dataset(max_n: usize) -> impl Strategy<Value = Vec<(Rect<2>, u64)>> {
    prop::collection::vec(
        (0.0..1000.0f64, 0.0..1000.0f64, 0.0..5.0f64, 0.0..5.0f64),
        1..max_n,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (x, y, w, h))| (Rect::new([x, y], [x + w, y + h]), i as u64))
            .collect()
    })
}

fn trees(a: &[(Rect<2>, u64)], b: &[(Rect<2>, u64)]) -> (RTree<2>, RTree<2>) {
    (
        RTree::bulk_load(RTreeParams::for_tests(), a.to_vec()),
        RTree::bulk_load(RTreeParams::for_tests(), b.to_vec()),
    )
}

fn canonical(mut v: Vec<ResultPair>) -> Vec<ResultPair> {
    v.sort_by(|a, b| {
        a.dist
            .total_cmp(&b.dist)
            .then_with(|| a.r.cmp(&b.r))
            .then_with(|| a.s.cmp(&b.s))
    });
    v
}

/// Canonical results reduced to comparable bits: exact distance bits
/// plus both ids, so `assert_eq!` on two of these is the bit-identity
/// contract.
fn bits(v: &[ResultPair]) -> Vec<(u64, u64, u64)> {
    v.iter().map(|p| (p.dist.to_bits(), p.r, p.s)).collect()
}

/// Policy cells: `None` is [`Exact`]; `Some(e)` is [`Aggressive`] with
/// that `edmax_override` (`Some(None)` uses the Equation 3 estimator).
fn run_cell(
    r: &RTree<2>,
    s: &RTree<2>,
    k: usize,
    cfg: &JoinConfig,
    policy: Option<Option<f64>>,
    threads: Option<usize>,
) -> JoinOutput {
    match (policy, threads) {
        (None, None) => engine::kdj(r, s, k, cfg, &Exact, &Sequential),
        (None, Some(t)) => engine::kdj(r, s, k, cfg, &Exact, &Parallel::new(t)),
        (Some(e), None) => {
            engine::kdj(r, s, k, cfg, &Aggressive { edmax_override: e }, &Sequential)
        }
        (Some(e), Some(t)) => engine::kdj(
            r,
            s,
            k,
            cfg,
            &Aggressive { edmax_override: e },
            &Parallel::new(t),
        ),
    }
}

fn policy_cells(scale: f64) -> Vec<(String, Option<Option<f64>>)> {
    let mut cells: Vec<(String, Option<Option<f64>>)> =
        vec![("exact".into(), None), ("agg[est]".into(), Some(None))];
    // Adversarial eDmax: zero and badly under-estimated force heavy
    // partition-pair compensation replay; over-estimated makes the
    // bounds-only pre-filter near-transparent.
    for factor in [0.0, 0.1, 0.5, 1.5] {
        cells.push((format!("agg[{factor}×]"), Some(Some(scale * factor))));
    }
    cells
}

const BACKENDS: [Option<usize>; 5] = [None, Some(1), Some(2), Some(3), Some(8)];

proptest! {
    #![proptest_config(ProptestConfig {
        cases: amdj_tests::proptest_cases(8),
        ..ProptestConfig::default()
    })]

    /// Every (partition count × policy × backend) cell equals the
    /// monolithic sequential exact reference bit for bit, and the
    /// pruned-pair ledger balances in every cell.
    #[test]
    fn partitioned_kdj_bit_identical(
        a in arb_dataset(60),
        b in arb_dataset(60),
        k in 1usize..80,
    ) {
        let want = bruteforce::k_closest_pairs(&a, &b, k);
        let (r, s) = trees(&a, &b);
        let reference =
            canonical(run_cell(&r, &s, k, &JoinConfig::unbounded(), None, None).results);
        prop_assert_eq!(reference.len(), want.len());
        for (g, w) in reference.iter().zip(want.iter()) {
            prop_assert!((g.dist - w.dist).abs() < 1e-9, "{} != {}", g.dist, w.dist);
        }
        let scale = want.last().map_or(1.0, |p| p.dist);
        for parts in [2usize, 4, 8] {
            for (name, policy) in policy_cells(scale) {
                for threads in BACKENDS {
                    let cfg = JoinConfig {
                        partitions: Some(parts),
                        ..JoinConfig::unbounded()
                    };
                    let label = format!("parts={parts} {name} × {threads:?}");
                    let out = run_cell(&r, &s, k, &cfg, policy, threads);
                    prop_assert!(
                        out.stats.partition_pairs_total >= 1,
                        "{}: plan must enumerate pairs",
                        label
                    );
                    prop_assert_eq!(
                        out.stats.partition_pairs_pruned,
                        out.stats.partition_pairs_replayed
                            + out.stats.partition_pairs_never_needed,
                        "{}: ledger must balance",
                        label
                    );
                    let got = canonical(out.results);
                    prop_assert_eq!(
                        bits(&reference),
                        bits(&got),
                        "{}: partitioned != monolithic",
                        label
                    );
                }
            }
        }
    }
}

/// Deterministic tie-free point scatter: `n` points spread over a
/// `span × span` box at `origin`, jittered by `phase`. Irregular
/// coordinates keep pair distances distinct, so bit-identity compares
/// are exact (regular grids would tie at the truncation boundary, where
/// id order may legitimately differ).
fn scatter(n: usize, origin: [f64; 2], span: f64, phase: f64) -> Vec<Rect<2>> {
    (0..n)
        .map(|i| {
            let t = i as f64;
            let x = origin[0] + (0.5 + 0.5 * (t * 0.734 + phase).sin()) * span;
            let y = origin[1] + (0.5 + 0.5 * (t * 1.271 + phase * 1.7).cos()) * span;
            Rect::new([x, y], [x, y])
        })
        .collect()
}

fn with_ids(rects: Vec<Rect<2>>) -> Vec<(Rect<2>, u64)> {
    rects
        .into_iter()
        .enumerate()
        .map(|(i, r)| (r, i as u64))
        .collect()
}

/// A deliberately under-estimated bound (`edmax_override` of `1e-6`
/// against clusters ~13 apart) prunes *every* partition pair; with no
/// survivors the bound starts infinite, so the plan must replay at
/// least the nearest pruned pair — whose k results then prove the rest
/// unnecessary — and still come out bit-identical to the monolithic
/// run.
#[test]
fn underestimated_bound_replays_pruned_pairs() {
    let a = with_ids(scatter(16, [0.0, 0.0], 1.0, 0.1));
    let b = with_ids(scatter(16, [10.0, 10.0], 1.0, 0.5));
    let (r, s) = trees(&a, &b);
    let k = 5;
    let policy = Some(Some(1e-6));
    let mono = canonical(run_cell(&r, &s, k, &JoinConfig::unbounded(), policy, None).results);
    let want = bruteforce::k_closest_pairs(&a, &b, k);
    assert_eq!(mono.len(), want.len());
    for (g, w) in mono.iter().zip(want.iter()) {
        assert!((g.dist - w.dist).abs() < 1e-9);
    }
    for threads in [None, Some(4)] {
        let cfg = JoinConfig {
            partitions: Some(4),
            ..JoinConfig::unbounded()
        };
        let out = run_cell(&r, &s, k, &cfg, policy, threads);
        let st = &out.stats;
        assert!(st.partition_pairs_total >= 4, "plan too small to exercise");
        assert_eq!(
            st.partition_pairs_pruned, st.partition_pairs_total,
            "every pair sits beyond the tiny bound"
        );
        assert!(
            st.partition_pairs_replayed > 0,
            "an all-pruned plan must replay to produce any result"
        );
        assert_eq!(
            st.partition_pairs_pruned,
            st.partition_pairs_replayed + st.partition_pairs_never_needed
        );
        assert_eq!(bits(&mono), bits(&canonical(out.results)));
    }
}

/// An over-estimated-but-sufficient bound (`edmax_override` of `5.0`
/// against cross-cluster gaps of ~99) prunes the cross-cluster pairs,
/// and the survivors' merged k-th distance proves they were never
/// needed: no replays, every pruned pair conclusively discarded.
#[test]
fn proven_bound_discards_pruned_pairs_without_replay() {
    let mut pts = scatter(25, [0.0, 0.0], 1.0, 0.3);
    pts.extend(scatter(25, [100.0, 100.0], 1.0, 0.7));
    let mut other = scatter(25, [0.0, 0.0], 1.0, 1.9);
    other.extend(scatter(25, [100.0, 100.0], 1.0, 2.3));
    let a = with_ids(pts);
    let b = with_ids(other);
    let (r, s) = trees(&a, &b);
    let k = 8;
    let policy = Some(Some(5.0));
    let mono = canonical(run_cell(&r, &s, k, &JoinConfig::unbounded(), policy, None).results);
    let cfg = JoinConfig {
        partitions: Some(4),
        ..JoinConfig::unbounded()
    };
    let out = run_cell(&r, &s, k, &cfg, policy, None);
    let st = &out.stats;
    assert!(
        st.partition_pairs_pruned > 0,
        "cross-cluster pairs must be pruned"
    );
    assert_eq!(st.partition_pairs_replayed, 0);
    assert_eq!(st.partition_pairs_never_needed, st.partition_pairs_pruned);
    assert_eq!(bits(&mono), bits(&canonical(out.results)));
}

/// The exact policy has no eDmax of its own, so the partition-level
/// pre-filter falls back to the Equation 3 estimate — which on widely
/// separated clusters still prunes the cross-cluster pairs.
#[test]
fn exact_policy_prunes_on_the_estimator() {
    let mut pts = scatter(25, [0.0, 0.0], 1.0, 0.3);
    pts.extend(scatter(25, [100.0, 100.0], 1.0, 0.7));
    let mut other = scatter(25, [0.0, 0.0], 1.0, 1.9);
    other.extend(scatter(25, [100.0, 100.0], 1.0, 2.3));
    let a = with_ids(pts);
    let b = with_ids(other);
    let (r, s) = trees(&a, &b);
    let k = 8;
    let mono = canonical(run_cell(&r, &s, k, &JoinConfig::unbounded(), None, None).results);
    let cfg = JoinConfig {
        partitions: Some(4),
        ..JoinConfig::unbounded()
    };
    let out = run_cell(&r, &s, k, &cfg, None, None);
    let st = &out.stats;
    assert!(st.partition_pairs_pruned > 0, "estimator must prune");
    assert_eq!(
        st.partition_pairs_pruned,
        st.partition_pairs_replayed + st.partition_pairs_never_needed
    );
    assert_eq!(bits(&mono), bits(&canonical(out.results)));
}

/// `partitions: None` and `partitions: Some(1)` are both the monolithic
/// plan: no pairs enumerated, no partition counters.
#[test]
fn one_partition_is_monolithic() {
    let a = with_ids(scatter(16, [0.0, 0.0], 4.0, 0.2));
    let b = with_ids(scatter(16, [2.0, 2.0], 4.0, 0.8));
    let (r, s) = trees(&a, &b);
    let mono = run_cell(&r, &s, 6, &JoinConfig::unbounded(), None, None);
    assert_eq!(mono.stats.partition_pairs_total, 0);
    let cfg = JoinConfig {
        partitions: Some(1),
        ..JoinConfig::unbounded()
    };
    let one = run_cell(&r, &s, 6, &cfg, None, None);
    assert_eq!(one.stats.partition_pairs_total, 0);
    assert_eq!(bits(&mono.results), bits(&one.results));
}

/// The partitioned plan composes with the static (steal=false) parallel
/// backend: per-pair invocations run claim-own-only and still merge
/// bit-identically.
#[test]
fn partitioned_with_static_parallel_backend() {
    let a = with_ids(scatter(36, [0.0, 0.0], 9.0, 0.2));
    let b = with_ids(scatter(36, [3.0, 1.0], 9.0, 0.8));
    let (r, s) = trees(&a, &b);
    let k = 12;
    let mono = canonical(run_cell(&r, &s, k, &JoinConfig::unbounded(), None, None).results);
    let cfg = JoinConfig {
        partitions: Some(4),
        steal: false,
        ..JoinConfig::unbounded()
    };
    let out = run_cell(&r, &s, k, &cfg, None, Some(4));
    assert_eq!(out.stats.pairs_stolen, 0, "steal=false must never steal");
    assert_eq!(bits(&mono), bits(&canonical(out.results)));
}
