//! The serve-mode IDJ cursor lifecycle: open → pull → checkpoint →
//! server "restart" → resume → the remaining stream is bit-identical to
//! the uninterrupted one. Plus the failure modes: corrupt or truncated
//! snapshots, wrong-kind snapshots, and impossible delivery positions
//! are clean structured errors — never panics.

use amdj_core::serve::{
    codec::{hex_decode, QuerySpec},
    snap_file_name, ServeError, ServeOptions, Server,
};
use amdj_core::{
    kdj_resumable, AmIdj, AmIdjOptions, Checkpointed, JoinConfig, PauseCtl, ResultPair,
};
use amdj_datagen::{clustered_points, uniform_points, unit_universe};
use amdj_rtree::RTree;
use amdj_tests::build_trees;

fn workload() -> (RTree<2>, RTree<2>) {
    let a = uniform_points(500, unit_universe(), 21);
    let b = clustered_points(500, 16, 0.02, unit_universe(), 22);
    build_trees(&a, &b)
}

/// The uninterrupted incremental stream, straight from the library
/// cursor.
fn reference(r: &RTree<2>, s: &RTree<2>, cfg: &JoinConfig, take: usize) -> Vec<ResultPair> {
    let mut cursor = AmIdj::new(r, s, cfg, AmIdjOptions::default());
    let mut out = Vec::with_capacity(take);
    while out.len() < take {
        match cursor.next() {
            Some(p) => out.push(p),
            None => break,
        }
    }
    out
}

fn serve_opts(cfg: &JoinConfig) -> ServeOptions {
    ServeOptions {
        base_config: cfg.clone(),
        // Small episodes so pulls and checkpoints exercise real
        // mid-join suspensions, not run-to-completion shortcuts.
        episode_expansions: 64,
        ..ServeOptions::default()
    }
}

fn assert_identical(label: &str, want: &[ResultPair], got: &[ResultPair]) {
    assert_eq!(want.len(), got.len(), "{label}: result count");
    for (i, (a, b)) in want.iter().zip(got.iter()).enumerate() {
        assert_eq!(
            a.dist.to_bits(),
            b.dist.to_bits(),
            "{label}: rank {i} distance"
        );
        assert_eq!((a.r, a.s), (b.r, b.s), "{label}: rank {i} ids");
    }
}

#[test]
fn checkpoint_restart_resume_is_bit_identical() {
    let (r, s) = workload();
    let cfg = JoinConfig::default();
    let take = 60;
    let want = reference(&r, &s, &cfg, take);
    assert_eq!(want.len(), take, "workload yields a full stream");

    let server1 = Server::new(&r, &s, serve_opts(&cfg));
    server1
        .idj_open("c", take, QuerySpec::default())
        .expect("opens");
    let first = server1.idj_pull("c", 25).expect("first pull");
    assert!(!first.done, "stream not exhausted at 25 of 60");
    assert_eq!(first.delivered, 25);
    assert_identical("first window", &want[..25], &first.results);
    let (bytes, at) = server1.idj_checkpoint("c").expect("checkpoint");
    assert_eq!(at, 25, "checkpoint records the delivery position");

    // "Restart": a brand-new server over the same trees, fed only the
    // snapshot bytes and the delivery position a client would replay.
    let server2 = Server::new(&r, &s, serve_opts(&cfg));
    server2
        .idj_resume("c", &bytes, at, QuerySpec::default())
        .expect("resumes");
    let mut rest = Vec::new();
    loop {
        let pull = server2.idj_pull("c", 10).expect("resumed pull");
        rest.extend(pull.results);
        if pull.done || rest.len() >= take - 25 {
            break;
        }
    }
    assert_identical("resumed remainder", &want[25..], &rest);
}

#[test]
fn fresh_and_exhausted_cursors_checkpoint_cleanly() {
    let (r, s) = workload();
    let cfg = JoinConfig::default();
    let take = 40;
    let want = reference(&r, &s, &cfg, take);

    // A cursor checkpointed before its first pull must resume into the
    // full stream.
    let server1 = Server::new(&r, &s, serve_opts(&cfg));
    server1
        .idj_open("fresh", take, QuerySpec::default())
        .expect("opens");
    let (bytes, at) = server1.idj_checkpoint("fresh").expect("fresh checkpoint");
    assert_eq!(at, 0);
    let server2 = Server::new(&r, &s, serve_opts(&cfg));
    server2
        .idj_resume("fresh", &bytes, at, QuerySpec::default())
        .expect("resumes");
    let mut all = Vec::new();
    loop {
        let pull = server2.idj_pull("fresh", 15).expect("pull");
        all.extend(pull.results);
        if pull.done || all.len() >= take {
            break;
        }
    }
    assert_identical("fresh-checkpoint stream", &want, &all);

    // A fully exhausted cursor still checkpoints (a resume-to-done
    // snapshot) and resumes into an immediately-done cursor.
    let drain = server2.idj_pull("fresh", take).expect("drain");
    assert!(drain.done, "cursor exhausted");
    assert_eq!(drain.delivered as usize, want.len());
    let (bytes, at) = server2.idj_checkpoint("fresh").expect("done checkpoint");
    let server3 = Server::new(&r, &s, serve_opts(&cfg));
    server3
        .idj_resume("done", &bytes, at, QuerySpec::default())
        .expect("resumes done");
    let after = server3.idj_pull("done", 10).expect("pull after done");
    assert!(after.results.is_empty(), "nothing left to deliver");
    assert!(after.done, "resumed cursor knows it is exhausted");
}

#[test]
fn corrupt_and_truncated_snapshots_are_clean_errors() {
    let (r, s) = workload();
    let cfg = JoinConfig::default();
    let server = Server::new(&r, &s, serve_opts(&cfg));
    server
        .idj_open("c", 50, QuerySpec::default())
        .expect("opens");
    server.idj_pull("c", 20).expect("pull");
    let (bytes, at) = server.idj_checkpoint("c").expect("checkpoint");

    // Truncations at every interesting length: magic, header, body.
    for len in [0, 4, 8, bytes.len() / 2, bytes.len() - 1] {
        let err = server
            .idj_resume("t", &bytes[..len], 0, QuerySpec::default())
            .expect_err("truncated snapshot must not resume");
        assert!(
            matches!(err, ServeError::Snapshot(_)),
            "truncation at {len}: structured snapshot error, got {err}"
        );
    }
    // A flipped magic byte is corruption, not a panic.
    let mut flipped = bytes.clone();
    flipped[0] ^= 0xff;
    let err = server
        .idj_resume("f", &flipped, 0, QuerySpec::default())
        .expect_err("corrupt magic must not resume");
    assert!(matches!(err, ServeError::Snapshot(_)));

    // A delivery position beyond the snapshot's results is impossible.
    let err = server
        .idj_resume("far", &bytes, u64::MAX, QuerySpec::default())
        .expect_err("impossible delivery position");
    assert!(matches!(err, ServeError::Snapshot(_)));

    // A KDJ snapshot is the wrong kind for an incremental cursor.
    let ctl = PauseCtl::every(8);
    let Checkpointed::Suspended(kdj_snap, _) =
        kdj_resumable(&r, &s, 40, &cfg, true, 1, None, None, Some(&ctl)).expect("suspends")
    else {
        panic!("a tiny pause budget must suspend the kdj");
    };
    let err = server
        .idj_resume("k", &kdj_snap.encode(), 0, QuerySpec::default())
        .expect_err("kdj snapshot must be refused");
    assert!(matches!(err, ServeError::Snapshot(_)));

    // The original, untampered snapshot still resumes fine.
    server
        .idj_resume("ok", &bytes, at, QuerySpec::default())
        .expect("pristine snapshot resumes");
}

#[test]
fn inflated_delivered_position_is_refused_not_a_panic() {
    let (r, s) = workload();
    let cfg = JoinConfig::default();
    let server = Server::new(&r, &s, serve_opts(&cfg));
    let take = 10;
    server
        .idj_open("c", take, QuerySpec::default())
        .expect("opens");
    server.idj_pull("c", 4).expect("pull");
    let (bytes, at) = server.idj_checkpoint("c").expect("checkpoint");

    // A suspended snapshot may retain more results than `take` (resume
    // evidence under the proven bound), so `delivered ≤ results_len`
    // alone does not make a position honest: any position past `take`
    // must be refused at resume time, before a pull can slice
    // `results[from..want]` with `from > want` and panic the handler.
    let snap = amdj_core::EngineSnapshot::<2>::decode(&bytes).expect("own snapshot decodes");
    for delivered in [take as u64 + 1, snap.results_len() as u64, u64::MAX] {
        if delivered <= take as u64 {
            continue; // small snapshot: position is honest, not inflated
        }
        let err = server
            .idj_resume("far", &bytes, delivered, QuerySpec::default())
            .expect_err("inflated delivery position must not resume");
        assert!(
            matches!(err, ServeError::Snapshot(_)),
            "structured error, got {err}"
        );
        // The failed resume left no cursor behind to pull on.
        assert!(matches!(
            server.idj_pull("far", 1),
            Err(ServeError::UnknownCursor(_))
        ));
    }

    // The honest position still resumes and pulls fine.
    server
        .idj_resume("ok", &bytes, at, QuerySpec::default())
        .expect("honest position resumes");
    server.idj_pull("ok", 3).expect("resumed cursor pulls");
}

#[test]
fn shutdown_checkpoint_directory_roundtrips() {
    let (r, s) = workload();
    let cfg = JoinConfig::default();
    let dir = std::env::temp_dir().join(format!("amdj-serve-cursor-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let server1 = Server::new(&r, &s, serve_opts(&cfg));
    server1
        .idj_open("alpha", 45, QuerySpec::default())
        .expect("opens");
    server1.idj_pull("alpha", 18).expect("pull");
    // Ids that the old lossy [A-Za-z0-9_-] sanitization would have
    // collided onto one file ("a.b" vs "a_b") or whose bytes would
    // have corrupted the tab/newline manifest ("beta/odd id",
    // "tab\tid"): each must land in its own snapshot file.
    for id in ["beta/odd id", "a.b", "a_b", "tab\tid"] {
        server1
            .idj_open(id, 30, QuerySpec::default())
            .expect("opens");
    }
    let mut ids = server1
        .checkpoint_open_cursors(&dir)
        .expect("shutdown checkpoint");
    ids.sort();
    assert_eq!(
        ids,
        vec!["a.b", "a_b", "alpha", "beta/odd id", "tab\tid"],
        "every id checkpointed"
    );
    for id in &ids {
        assert!(
            dir.join(snap_file_name(id)).is_file(),
            "{id:?} has its own snapshot file"
        );
    }
    let manifest = std::fs::read_to_string(dir.join("cursors.txt")).expect("manifest");
    assert_eq!(manifest.lines().count(), ids.len(), "one line per cursor");
    for line in manifest.lines() {
        let (hex_id, delivered) = line.split_once('\t').expect("hex(id)<TAB>delivered");
        let id = hex_decode(hex_id)
            .and_then(|b| String::from_utf8(b).ok())
            .expect("manifest ids decode");
        assert!(ids.contains(&id), "manifest id {id:?} was checkpointed");
        let _: u64 = delivered.parse().expect("delivery position parses");
    }
    let alpha_hex: String = "alpha".bytes().map(|b| format!("{b:02x}")).collect();
    assert!(
        manifest.contains(&format!("{alpha_hex}\t18")),
        "alpha's delivery position survives: {manifest}"
    );

    // Resume "alpha" on a fresh server from the on-disk snapshot; the
    // remainder must match the uninterrupted stream.
    let want = reference(&r, &s, &cfg, 45);
    let bytes = std::fs::read(dir.join(snap_file_name("alpha"))).expect("snapshot file");
    let server2 = Server::new(&r, &s, serve_opts(&cfg));
    server2
        .idj_resume("alpha", &bytes, 18, QuerySpec::default())
        .expect("resumes from disk");
    let mut rest = Vec::new();
    loop {
        let pull = server2.idj_pull("alpha", 12).expect("pull");
        rest.extend(pull.results);
        if pull.done || rest.len() >= 45 - 18 {
            break;
        }
    }
    assert_identical("disk-resumed remainder", &want[18..], &rest);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Regression: the shutdown checkpoint used to drain the cursor table
/// destructively, so a write failure halfway through the loop lost
/// every cursor not yet (and never to be) written — including the ones
/// already flushed, whose manifest never landed. A failed checkpoint
/// must leave the server exactly as it was: every cursor still open
/// and pullable, no partial manifest, and a retry must succeed.
#[test]
fn failed_shutdown_checkpoint_loses_no_cursors() {
    let (r, s) = workload();
    let cfg = JoinConfig::default();
    let dir = std::env::temp_dir().join(format!("amdj-serve-cursor-fail-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("state dir");

    let server = Server::new(&r, &s, serve_opts(&cfg));
    for id in ["a", "b", "c"] {
        server
            .idj_open(id, 40, QuerySpec::default())
            .expect("opens");
    }
    let first = server.idj_pull("a", 10).expect("pull");
    assert_eq!(first.delivered, 10);

    // Checkpointing writes cursors in sorted id order, so planting a
    // directory where "b"'s snapshot file must land makes the atomic
    // rename fail deterministically *after* "a" was written.
    std::fs::create_dir_all(dir.join(snap_file_name("b"))).expect("blocker");
    server
        .checkpoint_open_cursors(&dir)
        .expect_err("checkpoint into a blocked path fails");

    // No cursor was lost: all three still answer pulls...
    for id in ["a", "b", "c"] {
        server
            .idj_pull(id, 1)
            .unwrap_or_else(|e| panic!("cursor {id:?} survived the failed checkpoint: {e}"));
    }
    // ...and "a" kept its delivery position (10 before + 1 just now).
    let (_, at) = server.idj_checkpoint("a").expect("checkpoint");
    assert_eq!(at, 11, "delivery position survived the failed shutdown");
    // The manifest never landed, so a restart would resume nothing
    // stale.
    assert!(
        !dir.join("cursors.txt").exists(),
        "no partial manifest after a failed checkpoint"
    );

    // Clear the blocker; the retry checkpoints everything.
    std::fs::remove_dir_all(dir.join(snap_file_name("b"))).expect("unblock");
    let mut ids = server
        .checkpoint_open_cursors(&dir)
        .expect("retry succeeds");
    ids.sort();
    assert_eq!(ids, vec!["a", "b", "c"], "every cursor checkpointed");
    assert!(dir.join("cursors.txt").is_file(), "manifest landed");

    // And the snapshots are live: resume "a" and check the stream picks
    // up exactly where the pulls left off.
    let want = reference(&r, &s, &cfg, 40);
    let bytes = std::fs::read(dir.join(snap_file_name("a"))).expect("snapshot");
    let server2 = Server::new(&r, &s, serve_opts(&cfg));
    server2
        .idj_resume("a", &bytes, 11, QuerySpec::default())
        .expect("resumes");
    let mut rest = Vec::new();
    loop {
        let pull = server2.idj_pull("a", 12).expect("pull");
        rest.extend(pull.results);
        if pull.done || rest.len() >= 40 - 11 {
            break;
        }
    }
    assert_identical("post-retry remainder", &want[11..], &rest);
    let _ = std::fs::remove_dir_all(&dir);
}
