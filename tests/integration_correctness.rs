//! Cross-crate correctness: every join algorithm must produce exactly the
//! brute-force distance sequence on realistic workloads, with indexes
//! built both by STR bulk loading and by R* insertion.

use amdj_core::{
    am_kdj, b_kdj, bruteforce, hs_kdj, sj_sort, AmIdj, AmIdjOptions, AmKdjOptions, JoinConfig,
};
use amdj_datagen::tiger::Geography;
use amdj_datagen::{clustered_points, uniform_points, unit_universe, Dataset};
use amdj_rtree::{RTree, RTreeParams};
use amdj_tests::{assert_same_distances, build_trees};

fn all_kdj_algorithms_agree(a: &Dataset, b: &Dataset, k: usize, cfg: &JoinConfig) {
    let want = bruteforce::k_closest_pairs(a, b, k);
    let (r, s) = build_trees(a, b);

    let hs = hs_kdj(&r, &s, k, cfg);
    assert_same_distances(&hs.results, &want, "HS-KDJ");

    let bk = b_kdj(&r, &s, k, cfg);
    assert_same_distances(&bk.results, &want, "B-KDJ");

    let am = am_kdj(&r, &s, k, cfg, &AmKdjOptions::default());
    assert_same_distances(&am.results, &want, "AM-KDJ");

    if let Some(dmax) = want.last().map(|p| p.dist) {
        let sj = sj_sort(&r, &s, k, dmax, cfg);
        assert_same_distances(&sj.results, &want, "SJ-SORT");
    }

    let mut idj = AmIdj::new(&r, &s, cfg, AmIdjOptions::default());
    let mut got = Vec::new();
    while got.len() < k {
        match idj.next() {
            Some(p) => got.push(p),
            None => break,
        }
    }
    assert_same_distances(&got, &want, "AM-IDJ");
}

#[test]
fn uniform_workload_all_algorithms() {
    let a = uniform_points(900, unit_universe(), 11);
    let b = uniform_points(700, unit_universe(), 12);
    for k in [1, 17, 400] {
        all_kdj_algorithms_agree(&a, &b, k, &JoinConfig::unbounded());
    }
}

#[test]
fn skewed_workload_all_algorithms() {
    // Clustered data breaks the uniformity assumption behind eDmax —
    // exactly where compensation must save correctness.
    let a = clustered_points(800, 4, 0.01, unit_universe(), 31);
    let b = clustered_points(600, 3, 0.015, unit_universe(), 32);
    for k in [5, 150] {
        all_kdj_algorithms_agree(&a, &b, k, &JoinConfig::unbounded());
    }
}

#[test]
fn tiger_workload_all_algorithms() {
    let geo = Geography::arizona_like(9);
    let a = geo.streets(1200);
    let b = geo.hydro(500);
    for k in [10, 250] {
        all_kdj_algorithms_agree(&a, &b, k, &JoinConfig::unbounded());
    }
}

#[test]
fn rect_objects_all_algorithms() {
    let a = amdj_datagen::uniform_rects(600, unit_universe(), 0.05, 41);
    let b = amdj_datagen::uniform_rects(500, unit_universe(), 0.08, 42);
    all_kdj_algorithms_agree(&a, &b, 120, &JoinConfig::unbounded());
}

#[test]
fn disjoint_data_regions() {
    // R entirely left of S: every distance crosses the gap; the estimator
    // falls back to the union area.
    let a = uniform_points(300, amdj_geom::Rect::new([0.0, 0.0], [0.4, 1.0]), 51);
    let b = uniform_points(300, amdj_geom::Rect::new([0.6, 0.0], [1.0, 1.0]), 52);
    all_kdj_algorithms_agree(&a, &b, 50, &JoinConfig::unbounded());
}

#[test]
fn insert_built_trees_agree_with_bulk_loaded() {
    let a = uniform_points(500, unit_universe(), 61);
    let b = uniform_points(400, unit_universe(), 62);
    let k = 80;
    let want = bruteforce::k_closest_pairs(&a, &b, k);

    let mut r = RTree::new(RTreeParams::for_tests());
    for &(mbr, id) in &a {
        r.insert(mbr, id);
    }
    let mut s = RTree::new(RTreeParams::for_tests());
    for &(mbr, id) in &b {
        s.insert(mbr, id);
    }
    r.validate().expect("R valid");
    s.validate().expect("S valid");

    let out = b_kdj(&r, &s, k, &JoinConfig::unbounded());
    assert_same_distances(&out.results, &want, "B-KDJ over insert-built trees");
}

#[test]
fn very_different_cardinalities() {
    let a = uniform_points(2000, unit_universe(), 71);
    let b = uniform_points(50, unit_universe(), 72);
    all_kdj_algorithms_agree(&a, &b, 60, &JoinConfig::unbounded());
    all_kdj_algorithms_agree(&b, &a, 60, &JoinConfig::unbounded());
}

#[test]
fn duplicate_heavy_data() {
    // Many coincident points: floods of zero distances and ties.
    let mut a = Vec::new();
    for i in 0..200u64 {
        let x = (i % 5) as f64 * 0.2;
        a.push((
            amdj_geom::Rect::from_point(amdj_geom::Point::new([x, x])),
            i,
        ));
    }
    let b = a.clone();
    all_kdj_algorithms_agree(&a, &b, 300, &JoinConfig::unbounded());
}
