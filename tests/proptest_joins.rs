//! Property-based end-to-end validation of the joins that live *outside*
//! the unified engine (HS-KDJ and SJ-SORT keep their own loops), plus the
//! memory-budget invariance of the engine's reference configuration. The
//! engine-resident algorithms are covered across every policy × backend
//! cell in `engine_matrix.rs`.

use amdj_core::{b_kdj, bruteforce, hs_kdj, sj_sort, JoinConfig};
use amdj_geom::Rect;
use amdj_rtree::{RTree, RTreeParams};
use amdj_storage::CostModel;
use proptest::prelude::*;

fn arb_dataset(max_n: usize) -> impl Strategy<Value = Vec<(Rect<2>, u64)>> {
    prop::collection::vec(
        (0.0..1000.0f64, 0.0..1000.0f64, 0.0..5.0f64, 0.0..5.0f64),
        1..max_n,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (x, y, w, h))| (Rect::new([x, y], [x + w, y + h]), i as u64))
            .collect()
    })
}

fn trees(a: &[(Rect<2>, u64)], b: &[(Rect<2>, u64)]) -> (RTree<2>, RTree<2>) {
    (
        RTree::bulk_load(RTreeParams::for_tests(), a.to_vec()),
        RTree::bulk_load(RTreeParams::for_tests(), b.to_vec()),
    )
}

fn same_distances(
    got: &[amdj_core::ResultPair],
    want: &[amdj_core::ResultPair],
) -> Result<(), TestCaseError> {
    prop_assert_eq!(got.len(), want.len());
    for (g, w) in got.iter().zip(want.iter()) {
        prop_assert!((g.dist - w.dist).abs() < 1e-9, "{} != {}", g.dist, w.dist);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn hs_equals_bruteforce(
        a in arb_dataset(80),
        b in arb_dataset(80),
        k in 1usize..100,
    ) {
        let want = bruteforce::k_closest_pairs(&a, &b, k);
        let (r, s) = trees(&a, &b);
        let out = hs_kdj(&r, &s, k, &JoinConfig::unbounded());
        same_distances(&out.results, &want)?;
    }

    #[test]
    fn sjsort_equals_bruteforce(
        a in arb_dataset(80),
        b in arb_dataset(80),
        k in 1usize..100,
    ) {
        let want = bruteforce::k_closest_pairs(&a, &b, k);
        if let Some(dmax) = want.last().map(|p| p.dist) {
            let (r, s) = trees(&a, &b);
            let out = sj_sort(&r, &s, k.min(want.len()), dmax, &JoinConfig::unbounded());
            same_distances(&out.results, &want[..k.min(want.len())])?;
        }
    }

    #[test]
    fn bkdj_invariant_under_memory_budget(
        a in arb_dataset(90),
        b in arb_dataset(90),
        k in 1usize..120,
        mem_kb in 1usize..32,
    ) {
        let want = bruteforce::k_closest_pairs(&a, &b, k);
        let (r, s) = trees(&a, &b);
        let cfg = JoinConfig {
            queue_mem_bytes: mem_kb * 1024,
            queue_cost: CostModel { page_size: 1024, ..CostModel::paper_1999_disk() },
            ..JoinConfig::default()
        };
        let out = b_kdj(&r, &s, k, &cfg);
        same_distances(&out.results, &want)?;
    }
}
