//! Property-based end-to-end validation: random workloads, random
//! parameters — every algorithm must reproduce the brute-force distance
//! sequence exactly, under any memory budget and any `eDmax` estimate.

use amdj_core::{
    am_kdj, b_kdj, bruteforce, hs_kdj, sj_sort, AmIdj, AmIdjOptions, AmKdjOptions, Correction,
    EdmaxPolicy, JoinConfig,
};
use amdj_geom::Rect;
use amdj_rtree::{RTree, RTreeParams};
use amdj_storage::CostModel;
use proptest::prelude::*;

fn arb_dataset(max_n: usize) -> impl Strategy<Value = Vec<(Rect<2>, u64)>> {
    prop::collection::vec(
        (0.0..1000.0f64, 0.0..1000.0f64, 0.0..5.0f64, 0.0..5.0f64),
        1..max_n,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (x, y, w, h))| (Rect::new([x, y], [x + w, y + h]), i as u64))
            .collect()
    })
}

fn trees(a: &[(Rect<2>, u64)], b: &[(Rect<2>, u64)]) -> (RTree<2>, RTree<2>) {
    (
        RTree::bulk_load(RTreeParams::for_tests(), a.to_vec()),
        RTree::bulk_load(RTreeParams::for_tests(), b.to_vec()),
    )
}

fn same_distances(
    got: &[amdj_core::ResultPair],
    want: &[amdj_core::ResultPair],
) -> Result<(), TestCaseError> {
    prop_assert_eq!(got.len(), want.len());
    for (g, w) in got.iter().zip(want.iter()) {
        prop_assert!((g.dist - w.dist).abs() < 1e-9, "{} != {}", g.dist, w.dist);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn bkdj_equals_bruteforce(
        a in arb_dataset(120),
        b in arb_dataset(120),
        k in 1usize..200,
    ) {
        let want = bruteforce::k_closest_pairs(&a, &b, k);
        let (r, s) = trees(&a, &b);
        let out = b_kdj(&r, &s, k, &JoinConfig::unbounded());
        same_distances(&out.results, &want)?;
    }

    #[test]
    fn amkdj_equals_bruteforce_any_edmax(
        a in arb_dataset(100),
        b in arb_dataset(100),
        k in 1usize..150,
        edmax_factor in 0.0f64..5.0,
    ) {
        let want = bruteforce::k_closest_pairs(&a, &b, k);
        let scale = want.last().map_or(1.0, |p| p.dist);
        let (r, s) = trees(&a, &b);
        let opts = AmKdjOptions { edmax_override: Some(scale * edmax_factor) };
        let out = am_kdj(&r, &s, k, &JoinConfig::unbounded(), &opts);
        same_distances(&out.results, &want)?;
    }

    #[test]
    fn hs_equals_bruteforce(
        a in arb_dataset(80),
        b in arb_dataset(80),
        k in 1usize..100,
    ) {
        let want = bruteforce::k_closest_pairs(&a, &b, k);
        let (r, s) = trees(&a, &b);
        let out = hs_kdj(&r, &s, k, &JoinConfig::unbounded());
        same_distances(&out.results, &want)?;
    }

    #[test]
    fn sjsort_equals_bruteforce(
        a in arb_dataset(80),
        b in arb_dataset(80),
        k in 1usize..100,
    ) {
        let want = bruteforce::k_closest_pairs(&a, &b, k);
        if let Some(dmax) = want.last().map(|p| p.dist) {
            let (r, s) = trees(&a, &b);
            let out = sj_sort(&r, &s, k.min(want.len()), dmax, &JoinConfig::unbounded());
            same_distances(&out.results, &want[..k.min(want.len())])?;
        }
    }

    #[test]
    fn amidj_streams_bruteforce_order(
        a in arb_dataset(70),
        b in arb_dataset(70),
        take in 1usize..150,
        initial_k in 1u64..64,
        geometric in proptest::bool::ANY,
    ) {
        let want = bruteforce::k_closest_pairs(&a, &b, take);
        let (r, s) = trees(&a, &b);
        let corr = if geometric { Correction::Geometric } else { Correction::MinOfBoth };
        let opts = AmIdjOptions {
            initial_k,
            growth: 2.0,
            edmax: EdmaxPolicy::Estimated(corr),
        };
        let mut cursor = AmIdj::new(&r, &s, &JoinConfig::unbounded(), opts);
        let mut got = Vec::new();
        while got.len() < take {
            match cursor.next() {
                Some(p) => got.push(p),
                None => break,
            }
        }
        same_distances(&got, &want)?;
    }

    #[test]
    fn bkdj_invariant_under_memory_budget(
        a in arb_dataset(90),
        b in arb_dataset(90),
        k in 1usize..120,
        mem_kb in 1usize..32,
    ) {
        let want = bruteforce::k_closest_pairs(&a, &b, k);
        let (r, s) = trees(&a, &b);
        let cfg = JoinConfig {
            queue_mem_bytes: mem_kb * 1024,
            queue_cost: CostModel { page_size: 1024, ..CostModel::paper_1999_disk() },
            ..JoinConfig::default()
        };
        let out = b_kdj(&r, &s, k, &cfg);
        same_distances(&out.results, &want)?;
    }
}
