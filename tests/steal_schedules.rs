//! Schedule-perturbation proofs for the work-stealing backend.
//!
//! Thread timing cannot be dictated from a test, so these properties
//! drive the stealing path through [`TestSchedule`]: a seeded,
//! deterministic source of per-worker stalls and *forced* steal attempts
//! (a worker probes its peers before touching its own deque). Sweeping
//! the seed explores pathological interleavings — thieves racing a
//! victim's first claim, stalls straddling the shared-bound ratchet,
//! steal storms on a nearly-drained pool — while every run stays
//! reproducible from the failing case's inputs.
//!
//! The invariant is the engine's strongest: under *any* schedule, every
//! policy × thread-count cell must return results bit-identical to the
//! sequential reference. Distances are compared by bit pattern, ids
//! exactly (continuous random rectangles make distance ties
//! measure-zero).

use amdj_core::engine::{self, Aggressive, Exact, Parallel, Sequential};
use amdj_core::{AmIdjOptions, JoinConfig, Partition, ResultPair, TestSchedule};
use amdj_geom::Rect;
use amdj_rtree::{RTree, RTreeParams};
use proptest::prelude::*;

fn arb_dataset(max_n: usize) -> impl Strategy<Value = Vec<(Rect<2>, u64)>> {
    prop::collection::vec(
        (0.0..1000.0f64, 0.0..1000.0f64, 0.0..5.0f64, 0.0..5.0f64),
        1..max_n,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (x, y, w, h))| (Rect::new([x, y], [x + w, y + h]), i as u64))
            .collect()
    })
}

fn trees(a: &[(Rect<2>, u64)], b: &[(Rect<2>, u64)]) -> (RTree<2>, RTree<2>) {
    (
        RTree::bulk_load(RTreeParams::for_tests(), a.to_vec()),
        RTree::bulk_load(RTreeParams::for_tests(), b.to_vec()),
    )
}

fn canonical(mut v: Vec<ResultPair>) -> Vec<ResultPair> {
    v.sort_by(|a, b| {
        a.dist
            .total_cmp(&b.dist)
            .then_with(|| a.r.cmp(&b.r))
            .then_with(|| a.s.cmp(&b.s))
    });
    v
}

fn assert_identical(
    label: &str,
    want: &[ResultPair],
    got: &[ResultPair],
) -> Result<(), TestCaseError> {
    prop_assert_eq!(want.len(), got.len(), "{}: result count", label);
    for (i, (a, b)) in want.iter().zip(got.iter()).enumerate() {
        prop_assert_eq!(
            a.dist.to_bits(),
            b.dist.to_bits(),
            "{}: rank {} distance",
            label,
            i
        );
        prop_assert_eq!((a.r, a.s), (b.r, b.s), "{}: rank {} ids", label, i);
    }
    Ok(())
}

/// An aggressive perturbation: stall at every other claim point and force
/// a steal attempt at every other one, so workers spend the run racing
/// each other over the pool.
fn perturbed(seed: u64) -> TestSchedule {
    TestSchedule {
        seed,
        stall_one_in: 2,
        stall_spins: 32,
        force_steal_one_in: 2,
    }
}

fn stealing(threads: usize, seed: u64) -> Parallel {
    Parallel {
        threads,
        schedule: Some(perturbed(seed)),
    }
}

/// Policy cells: `None` is [`Exact`]; `Some(e)` is [`Aggressive`] with
/// that `edmax_override` (`Some(None)` uses the Equation 3 estimator).
fn policy_cells(scale: f64) -> Vec<(String, Option<Option<f64>>)> {
    let mut cells: Vec<(String, Option<Option<f64>>)> =
        vec![("exact".into(), None), ("agg[est]".into(), Some(None))];
    // Zero and under-estimates force the full compensation stage (the
    // stage-two work pool); the over-estimate makes stage one carry
    // everything, so the stage-one pool is where the stealing happens.
    for factor in [0.0, 0.3, 10.0] {
        cells.push((format!("agg[{factor}×]"), Some(Some(scale * factor))));
    }
    cells
}

const THREADS: [usize; 3] = [2, 3, 8];

/// Partition × leaf-kernel cells swept under perturbation: (partition,
/// `batched_leaf_sweep`, `quantized_prefilter`). A fractional sweep —
/// both partitions run the default lane+prefilter kernel, and each
/// ablated kernel (lanes without the prefilter, full scalar) runs under
/// one partition — covers every kernel and every partition against the
/// schedule fuzzer without squaring the cell count.
const SCHED_KERNEL_CELLS: [(Partition, bool, bool); 4] = [
    (Partition::Locality, true, true),
    (Partition::RoundRobin, true, true),
    (Partition::Locality, true, false),
    (Partition::RoundRobin, false, false),
];

proptest! {
    #![proptest_config(ProptestConfig {
        cases: amdj_tests::proptest_cases(8),
        ..ProptestConfig::default()
    })]

    /// Every policy × thread count, under a seeded stall/forced-steal
    /// schedule, returns the sequential answer bit for bit.
    #[test]
    fn kdj_stealing_bit_identical_under_perturbation(
        a in arb_dataset(80),
        b in arb_dataset(80),
        k in 1usize..110,
        seed in any::<u64>(),
    ) {
        let (r, s) = trees(&a, &b);
        let reference = canonical(
            engine::kdj(&r, &s, k, &JoinConfig::unbounded(), &Exact, &Sequential).results,
        );
        let scale = reference.last().map_or(1.0, |p| p.dist);
        for (name, policy) in policy_cells(scale) {
            for threads in THREADS {
                for (partition, batched, prefilter) in SCHED_KERNEL_CELLS {
                    let cfg = JoinConfig {
                        partition,
                        batched_leaf_sweep: batched,
                        quantized_prefilter: prefilter,
                        ..JoinConfig::unbounded()
                    };
                    let backend = stealing(threads, seed);
                    let out = match policy {
                        None => engine::kdj(&r, &s, k, &cfg, &Exact, &backend),
                        Some(e) => engine::kdj(
                            &r, &s, k, &cfg, &Aggressive { edmax_override: e }, &backend,
                        ),
                    };
                    let label = format!(
                        "{name} × {threads}t part={partition:?} \
                         batch={batched} q={prefilter} seed={seed}"
                    );
                    assert_identical(&label, &reference, &canonical(out.results))?;
                }
            }
        }
    }

    /// The incremental join under the same perturbation: stolen seeds and
    /// stalled cursors never change the merged stream.
    #[test]
    fn idj_stealing_bit_identical_under_perturbation(
        a in arb_dataset(70),
        b in arb_dataset(70),
        take in 1usize..100,
        initial_k in 1u64..64,
        seed in any::<u64>(),
    ) {
        let (r, s) = trees(&a, &b);
        let opts = AmIdjOptions { initial_k, growth: 2.0, ..AmIdjOptions::default() };
        let reference = canonical(
            engine::idj(&r, &s, take, &JoinConfig::unbounded(), &opts, &Sequential).results,
        );
        for threads in THREADS {
            for (partition, batched, prefilter) in SCHED_KERNEL_CELLS {
                let cfg = JoinConfig {
                    partition,
                    batched_leaf_sweep: batched,
                    quantized_prefilter: prefilter,
                    ..JoinConfig::unbounded()
                };
                let out = engine::idj(&r, &s, take, &cfg, &opts, &stealing(threads, seed));
                let label = format!(
                    "idj × {threads}t part={partition:?} \
                     batch={batched} q={prefilter} seed={seed}"
                );
                assert_identical(&label, &reference, &canonical(out.results))?;
            }
        }
    }
}

fn grid(n: usize, phase: f64) -> Vec<(Rect<2>, u64)> {
    (0..n * n)
        .map(|i| {
            let x = (i % n) as f64 * 1.618 + (i as f64 * 0.0137 + phase).sin();
            let y = (i / n) as f64 * 2.414 + (i as f64 * 0.0271 + phase).cos();
            (Rect::new([x, y], [x, y]), i as u64)
        })
        .collect()
}

/// Forcing a steal on every claim point actually steals: the pool is
/// fully populated before any worker starts, so the first forced scan of
/// every worker finds claimable peers. Guards against the schedule hook
/// silently becoming a no-op.
#[test]
fn forced_schedule_actually_steals() {
    let (r, s) = trees(&grid(20, 0.1), &grid(20, 0.73));
    let backend = Parallel {
        threads: 8,
        schedule: Some(TestSchedule {
            seed: 7,
            stall_one_in: 0,
            stall_spins: 0,
            force_steal_one_in: 1,
        }),
    };
    let out = engine::kdj(&r, &s, 200, &JoinConfig::unbounded(), &Exact, &backend);
    assert!(
        out.stats.pairs_stolen > 0,
        "no pairs stolen under a force-every-claim schedule"
    );
    assert!(out.stats.steal_attempts >= out.stats.pairs_stolen.min(1));
    let reference = engine::kdj(&r, &s, 200, &JoinConfig::unbounded(), &Exact, &Sequential);
    assert_eq!(canonical(out.results), canonical(reference.results));
}

/// The same seed replays the same decisions: two runs under one schedule
/// return byte-identical result streams (pre-canonicalization).
#[test]
fn schedule_is_deterministic_per_seed() {
    let (r, s) = trees(&grid(14, 0.4), &grid(14, 0.9));
    for seed in [0u64, 1, 0xdead_beef] {
        let run = || {
            engine::kdj(
                &r,
                &s,
                120,
                &JoinConfig::unbounded(),
                &Aggressive {
                    edmax_override: None,
                },
                &stealing(3, seed),
            )
        };
        assert_eq!(canonical(run().results), canonical(run().results));
    }
}
