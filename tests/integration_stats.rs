//! Statistics plausibility across algorithms: the relations the paper's
//! figures rely on must hold on real workloads.

use amdj_core::{am_kdj, b_kdj, hs_kdj, sj_sort, AmKdjOptions, JoinConfig};
use amdj_datagen::tiger::Geography;
use amdj_tests::{assert_same_distances, build_paper_trees, build_trees};

fn workload() -> (amdj_datagen::Dataset, amdj_datagen::Dataset) {
    let geo = Geography::arizona_like(55);
    (geo.streets(3000), geo.hydro(1000))
}

#[test]
fn bkdj_beats_hs_on_distance_computations() {
    // Figure 10(a): far fewer distance computations. The advantage needs
    // realistic fanout (~100 entries/node, the paper's 4 KB pages): with
    // toy fanout the Cartesian child product is too small to matter.
    let (a, b) = workload();
    let (r, s) = build_paper_trees(&a, &b);
    let k = 100;
    let hs = hs_kdj(&r, &s, k, &JoinConfig::unbounded());
    let bk = b_kdj(&r, &s, k, &JoinConfig::unbounded());
    assert_same_distances(&bk.results, &hs.results, "answers agree");
    assert!(
        (bk.stats.real_dist as f64) < 0.5 * hs.stats.real_dist as f64,
        "B-KDJ {} vs HS-KDJ {}",
        bk.stats.real_dist,
        hs.stats.real_dist
    );
}

#[test]
fn amkdj_no_worse_than_bkdj() {
    // §5.6: AM-KDJ with the default estimate never needs more queue
    // insertions than B-KDJ (the estimate tends to overestimate).
    let (a, b) = workload();
    let (r, s) = build_trees(&a, &b);
    for k in [10, 300] {
        let bk = b_kdj(&r, &s, k, &JoinConfig::unbounded());
        let am = am_kdj(
            &r,
            &s,
            k,
            &JoinConfig::unbounded(),
            &AmKdjOptions::default(),
        );
        assert_same_distances(&am.results, &bk.results, "answers agree");
        assert!(
            am.stats.mainq_insertions <= bk.stats.mainq_insertions,
            "k={k}: AM {} vs B {}",
            am.stats.mainq_insertions,
            bk.stats.mainq_insertions
        );
    }
}

#[test]
fn node_requests_dominate_disk_reads() {
    let (a, b) = workload();
    let (r, s) = build_trees(&a, &b);
    let out = b_kdj(&r, &s, 200, &JoinConfig::unbounded());
    assert!(out.stats.node_requests >= out.stats.node_disk_reads);
    assert!(out.stats.node_disk_reads > 0);
}

#[test]
fn axis_distances_bound_real_distances() {
    // Every real distance computation is gated by an axis check first.
    let (a, b) = workload();
    let (r, s) = build_trees(&a, &b);
    let out = b_kdj(&r, &s, 150, &JoinConfig::unbounded());
    assert!(out.stats.axis_dist >= out.stats.real_dist);
}

#[test]
fn underestimated_edmax_bounded_by_twice_bkdj() {
    // §5.6: even badly underestimated, AM-KDJ's work is bounded by about
    // twice B-KDJ (each child pair examined at most once per stage).
    let (a, b) = workload();
    let (r, s) = build_trees(&a, &b);
    let k = 200;
    let bk = b_kdj(&r, &s, k, &JoinConfig::unbounded());
    let dmax = bk.results.last().unwrap().dist;
    let am = am_kdj(
        &r,
        &s,
        k,
        &JoinConfig::unbounded(),
        &AmKdjOptions {
            edmax_override: Some(0.1 * dmax),
        },
    );
    assert_same_distances(&am.results, &bk.results, "answers agree");
    assert!(
        am.stats.real_dist <= 2 * bk.stats.real_dist + 1000,
        "AM {} vs 2×B {}",
        am.stats.real_dist,
        2 * bk.stats.real_dist
    );
}

#[test]
fn sjsort_oracle_run_is_competitive_on_distances() {
    // Figure 10(a): AM-KDJ is almost identical to SJ-SORT in distance
    // computations; both are far below HS-KDJ.
    let (a, b) = workload();
    let (r, s) = build_trees(&a, &b);
    let k = 100;
    let bk = b_kdj(&r, &s, k, &JoinConfig::unbounded());
    let dmax = bk.results.last().unwrap().dist;
    let sj = sj_sort(&r, &s, k, dmax, &JoinConfig::unbounded());
    let hs = hs_kdj(&r, &s, k, &JoinConfig::unbounded());
    assert!(sj.stats.real_dist < hs.stats.real_dist);
    assert_same_distances(&sj.results, &bk.results, "answers agree");
}

#[test]
fn results_count_matches_stats() {
    let (a, b) = workload();
    let (r, s) = build_trees(&a, &b);
    let out = am_kdj(
        &r,
        &s,
        77,
        &JoinConfig::unbounded(),
        &AmKdjOptions::default(),
    );
    assert_eq!(out.stats.results, out.results.len() as u64);
    assert_eq!(out.results.len(), 77);
}
