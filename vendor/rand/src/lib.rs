//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small surface it actually uses: [`rngs::StdRng`] (a
//! deterministic xoshiro256++ seeded through SplitMix64),
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`] for floats / bools /
//! integers, and [`Rng::gen_range`] over half-open ranges.
//!
//! Streams are fixed forever by this implementation, not by upstream
//! `rand`: the workspace's tests depend on seed-reproducibility and on
//! statistical quality (uniform 53-bit mantissa floats), never on
//! matching upstream byte streams.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use core::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (high half of [`next_u64`](RngCore::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Seedable generators (subset: byte-array seeds and `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds a generator from a raw byte seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a single `u64`, expanded via SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64::new(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of the standard distribution for `T`
    /// (uniform `[0, 1)` for floats, fair coin for `bool`, uniform for
    /// integers).
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from a half-open range.
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// The standard distribution (what [`Rng::gen`] samples).
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

/// A distribution producing values of type `T`.
pub trait Distribution<T> {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Samples one value uniformly; panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Two's complement makes the span correct for signed
                // types too; Lemire's multiply-shift avoids modulo bias
                // beyond 1/2^64.
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                let offset = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as u64).wrapping_add(offset) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit: f64 = Standard.sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit: f32 = Standard.sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// SplitMix64 — used to expand seeds; also a fine generator by itself.
#[derive(Clone, Debug)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(state: u64) -> Self {
        SplitMix64 { state }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The bundled generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic xoshiro256++ generator (stands in for rand's
    /// `StdRng`; the workspace depends on seed-reproducibility, not on
    /// upstream's exact stream).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (slot, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
                *slot = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s == [0; 4] {
                // xoshiro must never start from the all-zero state.
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Small-footprint generator; here simply the same engine.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_in_range_and_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_hits_all_buckets() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut hits = [0u32; 7];
        for _ in 0..7_000 {
            hits[rng.gen_range(0..7usize)] += 1;
        }
        assert!(hits.iter().all(|&h| h > 700), "{hits:?}");
    }

    #[test]
    fn signed_ranges() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1_000 {
            let v = rng.gen_range(-5..5);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn bool_is_fair_enough() {
        let mut rng = StdRng::seed_from_u64(9);
        let trues = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4_000..6_000).contains(&trues), "{trues}");
    }
}
