//! Offline stand-in for the `criterion` crate (0.5 API subset).
//!
//! The build environment has no access to crates.io, so benches link
//! against this plain timing harness instead: same macros and types
//! (`criterion_group!` / `criterion_main!` / [`Criterion`] /
//! [`BenchmarkGroup`] / [`BenchmarkId`] / [`Throughput`] /
//! [`Bencher::iter`]), no statistics, plots, or saved baselines. Each
//! benchmark is warmed up once, then timed over an adaptive iteration
//! count, and the mean time per iteration is printed.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(
            &id.into_benchmark_id().render(None),
            self.sample_size,
            None,
            f,
        );
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample (iteration) budget for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Records the per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().render(None));
        run_benchmark(&label, self.sample_size, self.throughput, f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().render(None));
        run_benchmark(&label, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Identifies one benchmark, optionally with a parameter.
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// A function name plus a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// A parameter value only (the group name identifies the function).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self, fallback: Option<&str>) -> String {
        match (&self.function, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => fallback.unwrap_or("bench").to_string(),
        }
    }
}

/// Conversion accepted wherever a benchmark name is expected.
pub trait IntoBenchmarkId {
    /// Converts into a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            function: Some(self.to_string()),
            parameter: None,
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            function: Some(self),
            parameter: None,
        }
    }
}

/// Per-iteration workload size, for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Times closures inside a benchmark body.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`, preventing the result from being
    /// optimized away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    // Warm-up and calibration pass.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    // Aim for ~100ms of measurement, bounded by the configured samples.
    let target = Duration::from_millis(100);
    let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, sample_size as u128) as u64;
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mean = b.elapsed.as_secs_f64() / iters as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean > 0.0 => {
            format!("  ({:.0} elem/s)", n as f64 / mean)
        }
        Some(Throughput::Bytes(n)) if mean > 0.0 => {
            format!("  ({:.1} MiB/s)", n as f64 / mean / (1024.0 * 1024.0))
        }
        _ => String::new(),
    };
    println!(
        "{label:<50} time: {}{rate}  [{iters} iters]",
        format_time(mean)
    );
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:>9.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:>9.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:>9.2} ms", secs * 1e3)
    } else {
        format!("{secs:>9.3} s ")
    }
}

/// Bundles benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits a `main` that runs the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_prints() {
        let mut c = Criterion::default();
        let mut runs = 0u64;
        c.bench_function("smoke/add", |b| b.iter(|| black_box(2u64) + 2));
        c.bench_function("smoke/count", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        assert!(runs >= 2, "calibration + measurement passes both ran");
    }

    #[test]
    fn groups_run_with_inputs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("grp");
        g.sample_size(5).throughput(Throughput::Elements(3));
        g.bench_with_input(BenchmarkId::new("sum", 3), &[1u64, 2, 3][..], |b, xs| {
            b.iter(|| xs.iter().sum::<u64>())
        });
        g.bench_function(BenchmarkId::from_parameter(7), |b| b.iter(|| 7u64 * 6));
        g.finish();
    }
}
