//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! vendors the subset of proptest's API the workspace uses: the
//! [`proptest!`] macro (with `#![proptest_config]`), range / tuple /
//! [`Just`] / [`prop_oneof!`] / `prop::collection::vec` strategies,
//! `prop_map`, `any::<bool>()`, `prop_assert!` / `prop_assert_eq!`, and
//! [`TestCaseError`].
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking.** A failing case panics with the full `Debug`
//!   rendering of the generated input instead of a minimized one.
//! * **Deterministic seeds.** Case `i` of every test draws from a fixed
//!   seed derived from `i`, so failures reproduce exactly across runs.
//! * `PROPTEST_CASES` in the environment still overrides the case count.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use rand::{Rng as _, SeedableRng as _};

/// The generator handed to strategies (deterministic per test case).
pub type TestRng = rand::rngs::StdRng;

/// Configuration accepted by `#![proptest_config(..)]`.
///
/// Only `cases` changes behaviour here; the other fields exist so that
/// upstream-style `..ProptestConfig::default()` updates keep compiling.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
    /// Unused (no shrinking in this stand-in).
    pub max_shrink_iters: u32,
    /// Unused (rejection sampling is not supported).
    pub max_global_rejects: u32,
    /// Unused (fork-per-case is not supported).
    pub fork: bool,
    /// Unused (per-case timeouts are not supported).
    pub timeout: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig {
            cases,
            max_shrink_iters: 0,
            max_global_rejects: 0,
            fork: false,
            timeout: 0,
        }
    }
}

/// Why a test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The input was rejected (counts as skipped, not failed).
    Reject(String),
    /// The property was falsified.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A rejection with the given message.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
            TestCaseError::Fail(r) => write!(f, "{r}"),
        }
    }
}

/// Shorthand for what a `proptest!` body evaluates to.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A generator of random values of an associated type.
pub trait Strategy {
    /// The type of value generated.
    type Value: fmt::Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: fmt::Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    U: fmt::Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.start..self.end)
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.start..self.end)
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        rng.gen_range(self.start..self.end)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Weighted union over same-valued strategies (built by [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T: fmt::Debug> Union<T> {
    /// Builds a union; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        Union { arms, total }
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.gen_range(0..self.total);
        for (w, s) in &self.arms {
            if pick < *w {
                return s.sample(rng);
            }
            pick -= w;
        }
        unreachable!("weights covered above")
    }
}

/// Types with a canonical strategy, selected via [`any`].
pub trait Arbitrary: Sized + fmt::Debug {
    /// The canonical strategy for this type.
    type Strategy: Strategy<Value = Self>;

    /// Returns the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (e.g. `any::<bool>()`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

impl Arbitrary for bool {
    type Strategy = crate::bool::Any;

    fn arbitrary() -> Self::Strategy {
        crate::bool::ANY
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty => $full:expr),*) => {$(
        impl Arbitrary for $t {
            type Strategy = core::ops::Range<$t>;

            fn arbitrary() -> Self::Strategy {
                $full
            }
        }
    )*};
}
impl_arbitrary_int!(
    u8 => 0..u8::MAX, u16 => 0..u16::MAX, u32 => 0..u32::MAX,
    u64 => 0..u64::MAX, usize => 0..usize::MAX
);

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};
    use rand::Rng as _;

    /// A fair coin.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The fair-coin strategy (`proptest::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.gen::<bool>()
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng as _;

    /// Generates `Vec`s of `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.start..self.size.end);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Upstream-style namespace: `prop::collection::vec`, `prop::bool::ANY`.
pub mod prop {
    pub use crate::bool;
    pub use crate::collection;
}

/// Everything a `proptest!` user needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// Drives the generated test cases; used by the [`proptest!`] expansion.
pub mod runner {
    use super::*;

    /// Runs `config.cases` deterministic cases of `f` over `strategy`.
    ///
    /// Panics (failing the surrounding `#[test]`) on the first falsified
    /// case, printing the generated input since no shrinking is done.
    pub fn run<S, F>(config: ProptestConfig, strategy: &S, f: F)
    where
        S: Strategy,
        F: Fn(S::Value) -> TestCaseResult,
    {
        for case in 0..config.cases {
            // Deterministic per-case seed: failures reproduce exactly.
            let mut rng = TestRng::seed_from_u64(0xAD0B_5EED ^ (u64::from(case) << 20));
            let value = strategy.sample(&mut rng);
            let rendered = format!("{value:#?}");
            match catch_unwind(AssertUnwindSafe(|| f(value))) {
                Ok(Ok(())) => {}
                Ok(Err(TestCaseError::Reject(_))) => {}
                Ok(Err(TestCaseError::Fail(reason))) => {
                    panic!(
                        "proptest case {case} falsified: {reason}\n\
                         input (no shrinking in offline stand-in):\n{rendered}"
                    );
                }
                Err(payload) => {
                    eprintln!(
                        "proptest case {case} panicked; \
                         input (no shrinking in offline stand-in):\n{rendered}"
                    );
                    resume_unwind(payload);
                }
            }
        }
    }
}

/// Declares property tests (the subset of upstream's grammar used here:
/// an optional `#![proptest_config(..)]` followed by `#[test]` functions
/// whose arguments are `pattern in strategy` pairs).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!($crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($cfg:expr; $($(#[$meta:meta])+ fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::runner::run(config, &($($strat,)+), |($($pat,)+)| {
                    $body
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
}

/// Fails the enclosing test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the enclosing test case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(
                    *left == *right,
                    "assertion failed: `{:?}` == `{:?}`", left, right
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(*left == *right, $($fmt)*);
            }
        }
    };
}

/// Fails the enclosing test case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(
                    *left != *right,
                    "assertion failed: `{:?}` != `{:?}`",
                    left,
                    right
                );
            }
        }
    };
}

/// Picks among strategies, optionally weighted
/// (`prop_oneof![3 => a, 2 => b]`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Toggle {
        On(u16),
        Off,
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -2.5f64..9.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.5..9.5).contains(&y));
        }

        #[test]
        fn vec_respects_size(v in prop::collection::vec(0u16..50, 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 50));
        }

        #[test]
        fn oneof_and_map(t in prop_oneof![3 => (1u16..5).prop_map(Toggle::On), 1 => Just(Toggle::Off)]) {
            match t {
                Toggle::On(v) => prop_assert!((1..5).contains(&v)),
                Toggle::Off => {}
            }
        }

        #[test]
        fn bools_via_any(a in any::<bool>(), b in crate::bool::ANY) {
            prop_assert_eq!(a & b, b & a);
        }
    }

    #[test]
    #[should_panic(expected = "falsified")]
    fn failures_panic_with_input() {
        crate::runner::run(
            ProptestConfig {
                cases: 16,
                ..ProptestConfig::default()
            },
            &(0u32..100,),
            |(x,)| {
                prop_assert!(x < 2, "x was {}", x);
                Ok(())
            },
        );
    }
}
