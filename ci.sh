#!/usr/bin/env bash
# Local CI: formatting, lints, full test suite. Vendored crates under
# vendor/ are workspace-excluded and deliberately not linted.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (all targets, warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo bench --no-run (benches must keep compiling) =="
cargo bench --no-run --workspace

echo "== cargo doc (no deps, warnings are errors) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "== cargo test =="
cargo test -q

echo "== bench smoke: emitted JSON schema =="
# A tiny bench run; then validate the schema version and required columns
# so consumers of BENCH_kdj.json notice shape drift here, not downstream.
BENCH_SMOKE_JSON="$(mktemp -t bench_smoke.XXXXXX.json)"
trap 'rm -f "$BENCH_SMOKE_JSON"' EXIT
cargo run --release -q -p amdj-bench --bin amdj -- \
    bench --n 300 --k 20 --json "$BENCH_SMOKE_JSON" 2>/dev/null
grep -q '"schema_version": 9' "$BENCH_SMOKE_JSON" \
    || { echo "bench smoke: schema_version != 9"; exit 1; }
for col in op algo dataset query_id transport connections threads steal partition \
           prefilter k partitions \
           wall_time_s node_accesses \
           pairs_computed quantized_rejects exact_dist_skipped results \
           pairs_stolen steal_attempts barrier_idle_ns \
           buffer_hits buffer_misses buffer_evictions buffer_hit_rate \
           queue_wait_ns admission_rejections \
           buffer_hits_by_worker buffer_misses_by_worker \
           checkpoints_written partition_pairs_total partition_pairs_pruned \
           partition_pairs_replayed partition_pairs_never_needed; do
    grep -q "\"$col\":" "$BENCH_SMOKE_JSON" \
        || { echo "bench smoke: missing column '$col'"; exit 1; }
done
grep -q '"partition": "rr"' "$BENCH_SMOKE_JSON" \
    || { echo "bench smoke: missing round-robin ablation rows"; exit 1; }
grep -q '"algo": "am-ckpt"' "$BENCH_SMOKE_JSON" \
    || { echo "bench smoke: missing am-ckpt checkpoint-overhead row"; exit 1; }
grep -q '"prefilter": false' "$BENCH_SMOKE_JSON" \
    || { echo "bench smoke: missing prefilter-off ablation row"; exit 1; }
grep -Eq '"quantized_rejects": [1-9]' "$BENCH_SMOKE_JSON" \
    || { echo "bench smoke: prefilter never rejected a candidate"; exit 1; }
# The partitioned clustered row must actually prune partition pairs, and
# the partitioned plan must return the same result count as its
# monolithic ablation twin (the plan is bit-identical; the CLI smoke
# below diffs the full result stream).
grep '"dataset": "clustered"' "$BENCH_SMOKE_JSON" | grep '"partitions": 8' \
    | grep -Eq '"partition_pairs_pruned": [1-9]' \
    || { echo "bench smoke: partitioned clustered row never pruned a pair"; exit 1; }
mono_results=$(grep '"dataset": "clustered"' "$BENCH_SMOKE_JSON" \
    | grep '"partitions": 0,' | grep -o '"results": [0-9]*')
part_results=$(grep '"dataset": "clustered"' "$BENCH_SMOKE_JSON" \
    | grep '"partitions": 8,' | grep -o '"results": [0-9]*')
[ -n "$mono_results" ] && [ "$mono_results" = "$part_results" ] \
    || { echo "bench smoke: partitioned results ($part_results) != monolithic ($mono_results)"; exit 1; }
# The serve section runs 144 mixed queries over 16 concurrent TCP
# connections (bit-identity against serial is asserted inside the bench
# itself) and emits one op="serve" row per query, tagged with the
# transport. Against the default 8-slot admission budget, 16 connections
# guarantee some query visibly queued.
grep -q '"op": "serve"' "$BENCH_SMOKE_JSON" \
    || { echo "bench smoke: missing serve rows"; exit 1; }
# Single greps, not `grep | grep -q` pipelines: under pipefail, -q
# exiting at the first match SIGPIPEs the upstream grep across 144
# serve rows. Each row is one line, with op before the other columns.
grep -Eq '"op": "serve".*"transport": "tcp"' "$BENCH_SMOKE_JSON" \
    || { echo "bench smoke: serve rows not tagged with the tcp transport"; exit 1; }
grep -Eq '"op": "serve".*"queue_wait_ns": [1-9]' "$BENCH_SMOKE_JSON" \
    || { echo "bench smoke: no serve row reports a nonzero queue wait"; exit 1; }
echo "bench smoke: schema_version 9 with all required columns, partition pruning fired"

echo "== checkpoint smoke: interrupt, resume, compare =="
# An interrupted join must exit 75 with a checkpoint on disk, and the
# resumed run must finish with the uninterrupted run's exact results.
CKPT_DIR="$(mktemp -d -t ckpt_smoke.XXXXXX)"
trap 'rm -f "$BENCH_SMOKE_JSON"; rm -rf "$CKPT_DIR"' EXIT
AMDJ="cargo run --release -q -p amdj-bench --bin amdj --"
$AMDJ generate --kind uniform --n 1500 --seed 7 --out "$CKPT_DIR/a.csv" >/dev/null
$AMDJ generate --kind clustered --n 1500 --seed 8 --out "$CKPT_DIR/b.csv" >/dev/null
$AMDJ build --input "$CKPT_DIR/a.csv" --out "$CKPT_DIR/a.amdj" >/dev/null
$AMDJ build --input "$CKPT_DIR/b.csv" --out "$CKPT_DIR/b.amdj" >/dev/null
$AMDJ kdj --r "$CKPT_DIR/a.amdj" --s "$CKPT_DIR/b.amdj" --k 100 --algo am \
    > "$CKPT_DIR/ref.txt" 2>/dev/null
rc=0
AMDJ_INTERRUPT_AFTER=25 $AMDJ kdj --r "$CKPT_DIR/a.amdj" --s "$CKPT_DIR/b.amdj" \
    --k 100 --algo am --checkpoint-path "$CKPT_DIR/run.snap" --checkpoint-every 10 \
    >/dev/null 2>&1 || rc=$?
[ "$rc" = "75" ] || { echo "checkpoint smoke: interrupted exit $rc != 75"; exit 1; }
[ -f "$CKPT_DIR/run.snap" ] || { echo "checkpoint smoke: no checkpoint written"; exit 1; }
$AMDJ kdj --r "$CKPT_DIR/a.amdj" --s "$CKPT_DIR/b.amdj" --k 100 --algo par-am \
    --threads 4 --resume "$CKPT_DIR/run.snap" > "$CKPT_DIR/res.txt" 2>/dev/null
diff <(grep -v '^#' "$CKPT_DIR/ref.txt") <(grep -v '^#' "$CKPT_DIR/res.txt") \
    || { echo "checkpoint smoke: resumed results differ"; exit 1; }
echo "checkpoint smoke: interrupt exited 75, resume bit-identical"

echo "== kernel ablation smoke: quantized prefilter on vs off =="
# The same join with the quantized MBR prefilter on (default) and off
# must print byte-identical results — the screen is an optimization, not
# an approximation. Reuses the indexes the checkpoint smoke built.
$AMDJ kdj --r "$CKPT_DIR/a.amdj" --s "$CKPT_DIR/b.amdj" --k 100 --algo am \
    > "$CKPT_DIR/q_on.txt" 2>/dev/null
$AMDJ kdj --r "$CKPT_DIR/a.amdj" --s "$CKPT_DIR/b.amdj" --k 100 --algo am \
    --no-prefilter > "$CKPT_DIR/q_off.txt" 2>/dev/null
diff <(grep -v '^#' "$CKPT_DIR/q_on.txt") <(grep -v '^#' "$CKPT_DIR/q_off.txt") \
    || { echo "kernel ablation smoke: prefilter changed join results"; exit 1; }
echo "kernel ablation smoke: prefilter on/off bit-identical"

echo "== partitioned plan smoke: STR tiling + pruning vs monolithic =="
# The same aggressive join as the checkpoint smoke's reference, run as an
# 8-partition plan: STR tiling, bounds-only partition-pair pruning, and
# compensation replay must not move a single byte of output.
$AMDJ kdj --r "$CKPT_DIR/a.amdj" --s "$CKPT_DIR/b.amdj" --k 100 --algo am \
    --partitions 8 > "$CKPT_DIR/part.txt" 2>/dev/null
diff <(grep -v '^#' "$CKPT_DIR/ref.txt") <(grep -v '^#' "$CKPT_DIR/part.txt") \
    || { echo "partitioned plan smoke: partitioned results differ"; exit 1; }
# The plan is deliberately not resumable; the flag combination must be
# rejected up front rather than silently dropping one of the two.
if $AMDJ kdj --r "$CKPT_DIR/a.amdj" --s "$CKPT_DIR/b.amdj" --k 100 --algo am \
    --partitions 8 --checkpoint-path "$CKPT_DIR/nope.snap" >/dev/null 2>&1; then
    echo "partitioned plan smoke: --partitions + checkpointing not rejected"; exit 1
fi
echo "partitioned plan smoke: partitioned results bit-identical to monolithic"

echo "== serve smoke: concurrent protocol queries over one shared index =="
# Drive `amdj serve` over the protocol: three concurrent kdj queries,
# then an IDJ cursor suspended across a server restart, each diffed
# against the one-shot CLI. Uses the release binary directly (not
# `cargo run`) so SIGINT reaches the server, not the cargo wrapper.
# Dependent requests on one cursor are driven in lockstep — a cursor is
# checked out per request and concurrent ops on it fail fast by design.
SERVE_DIR="$CKPT_DIR/serve"
mkdir -p "$SERVE_DIR/state"
AMDJ_BIN="target/release/amdj"
[ -x "$AMDJ_BIN" ] || cargo build --release -q -p amdj-bench --bin amdj
# Turns a serve Results line into the CLI's r,s,dist lines.
serve_pairs() {
    grep -o '"r":[0-9]*,"s":[0-9]*,"dist":[0-9.e-]*' | sed 's/"[a-z]*"://g'
}
await_lines() {  # lockstep: wait until $2 holds at least $1 response lines
    for _ in $(seq 1 200); do
        [ "$(wc -l < "$2")" -ge "$1" ] && return 0
        sleep 0.05
    done
    echo "serve smoke: timed out waiting for $1 responses in $2"; exit 1
}
mkfifo "$SERVE_DIR/in1"
"$AMDJ_BIN" serve --r "$CKPT_DIR/a.amdj" --s "$CKPT_DIR/b.amdj" \
    --state-dir "$SERVE_DIR/state" \
    < "$SERVE_DIR/in1" > "$SERVE_DIR/out1.jsonl" 2>/dev/null &
SERVE_PID=$!
exec 3> "$SERVE_DIR/in1"
# Three concurrent kdj queries with distinct ids, fired back-to-back.
printf '%s\n' \
    '{"op":"kdj","id":"q1","k":50}' \
    '{"op":"kdj","id":"q2","k":50,"aggressive":false}' \
    '{"op":"kdj","id":"q3","k":50,"threads":2}' >&3
await_lines 3 "$SERVE_DIR/out1.jsonl"
# An IDJ cursor: open, pull a prefix, leave it open for the shutdown
# checkpoint into --state-dir.
printf '%s\n' '{"op":"idj_open","id":"c1","take":40}' >&3
await_lines 4 "$SERVE_DIR/out1.jsonl"
printf '%s\n' '{"op":"idj_pull","id":"c1","n":25}' >&3
await_lines 5 "$SERVE_DIR/out1.jsonl"
printf '%s\n' '{"op":"shutdown"}' >&3
exec 3>&-
wait "$SERVE_PID" || { echo "serve smoke: shutdown exit $?"; exit 1; }
if grep -q '"ok":false' "$SERVE_DIR/out1.jsonl"; then
    echo "serve smoke: a request failed"
    grep '"ok":false' "$SERVE_DIR/out1.jsonl"
    exit 1
fi
# Each concurrent kdj answer must match the one-shot CLI bit for bit.
$AMDJ kdj --r "$CKPT_DIR/a.amdj" --s "$CKPT_DIR/b.amdj" --k 50 --algo am \
    > "$SERVE_DIR/kdj_am.txt" 2>/dev/null
$AMDJ kdj --r "$CKPT_DIR/a.amdj" --s "$CKPT_DIR/b.amdj" --k 50 --algo b \
    > "$SERVE_DIR/kdj_b.txt" 2>/dev/null
for q in q1:kdj_am q2:kdj_b q3:kdj_am; do
    id="${q%%:*}"; ref="${q##*:}"
    diff <(grep "\"id\":\"$id\"" "$SERVE_DIR/out1.jsonl" | serve_pairs) \
         <(grep -v '^#' "$SERVE_DIR/$ref.txt") \
        || { echo "serve smoke: $id differs from one-shot CLI"; exit 1; }
done
# Restart with the same --state-dir: c1 resumes at 25 delivered; the
# remainder plus the first window must equal the one-shot IDJ stream.
mkfifo "$SERVE_DIR/in2"
"$AMDJ_BIN" serve --r "$CKPT_DIR/a.amdj" --s "$CKPT_DIR/b.amdj" \
    --state-dir "$SERVE_DIR/state" \
    < "$SERVE_DIR/in2" > "$SERVE_DIR/out2.jsonl" 2>/dev/null &
SERVE_PID=$!
exec 3> "$SERVE_DIR/in2"
printf '%s\n' '{"op":"idj_pull","id":"c1","n":15}' >&3
await_lines 1 "$SERVE_DIR/out2.jsonl"
printf '%s\n' '{"op":"shutdown"}' >&3
exec 3>&-
wait "$SERVE_PID" || { echo "serve smoke: restart shutdown exit $?"; exit 1; }
$AMDJ idj --r "$CKPT_DIR/a.amdj" --s "$CKPT_DIR/b.amdj" --take 40 --algo am \
    > "$SERVE_DIR/idj.txt" 2>/dev/null
diff <(cat <(grep '"op":"idj_pull"' "$SERVE_DIR/out1.jsonl" | serve_pairs) \
           <(grep '"op":"idj_pull"' "$SERVE_DIR/out2.jsonl" | serve_pairs)) \
     <(grep -v '^#' "$SERVE_DIR/idj.txt") \
    || { echo "serve smoke: suspended+resumed cursor stream differs"; exit 1; }
# SIGINT must drain, checkpoint open cursors, and exit 75.
mkfifo "$SERVE_DIR/in3"
"$AMDJ_BIN" serve --r "$CKPT_DIR/a.amdj" --s "$CKPT_DIR/b.amdj" \
    --state-dir "$SERVE_DIR/state3" \
    < "$SERVE_DIR/in3" > "$SERVE_DIR/out3.jsonl" 2>/dev/null &
SERVE_PID=$!
exec 3> "$SERVE_DIR/in3"
printf '%s\n' '{"op":"idj_open","id":"sig","take":30}' >&3
await_lines 1 "$SERVE_DIR/out3.jsonl"
kill -INT "$SERVE_PID"
rc=0; wait "$SERVE_PID" || rc=$?
exec 3>&-
[ "$rc" = "75" ] || { echo "serve smoke: SIGINT exit $rc != 75"; exit 1; }
# Snapshot files are named by the hex of the cursor id ("sig" = 736967),
# so arbitrary ids neither collide nor corrupt the manifest.
[ -f "$SERVE_DIR/state3/736967.snap" ] \
    || { echo "serve smoke: SIGINT left no cursor checkpoint"; exit 1; }
echo "serve smoke: concurrent queries bit-identical, cursor survived restart, SIGINT exited 75"

echo "== socket smoke: amdj serve --listen over TCP =="
# The same protocol over a real socket: kdj and an IDJ cursor driven
# through bash's /dev/tcp, diffed against the one-shot CLI; then SIGINT
# must drain the connection, checkpoint the open cursor, and exit 75;
# a restarted server must resume the cursor over a fresh connection.
SOCK_DIR="$CKPT_DIR/sock"
mkdir -p "$SOCK_DIR/state"
await_port() {  # parse the ephemeral port from the "# listening on" line
    for _ in $(seq 1 200); do
        PORT="$(sed -n 's/^# listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' "$1")"
        [ -n "$PORT" ] && return 0
        sleep 0.05
    done
    echo "socket smoke: server never printed its listening address"; exit 1
}
"$AMDJ_BIN" serve --r "$CKPT_DIR/a.amdj" --s "$CKPT_DIR/b.amdj" \
    --state-dir "$SOCK_DIR/state" --listen 127.0.0.1:0 --max-conns 64 \
    2> "$SOCK_DIR/err1.txt" &
SERVE_PID=$!
await_port "$SOCK_DIR/err1.txt"
exec 4<>"/dev/tcp/127.0.0.1/$PORT"
printf '%s\n' '{"op":"kdj","id":"t1","k":50}' >&4
IFS= read -r resp <&4
printf '%s\n' "$resp" | grep -q '"ok":true' \
    || { echo "socket smoke: kdj over tcp failed: $resp"; exit 1; }
diff <(printf '%s\n' "$resp" | serve_pairs) \
     <(grep -v '^#' "$SERVE_DIR/kdj_am.txt") \
    || { echo "socket smoke: kdj over tcp differs from one-shot CLI"; exit 1; }
printf '%s\n' '{"op":"idj_open","id":"tc","take":40}' >&4
IFS= read -r resp <&4
printf '%s\n' "$resp" | grep -q '"ok":true' \
    || { echo "socket smoke: idj_open over tcp failed: $resp"; exit 1; }
printf '%s\n' '{"op":"idj_pull","id":"tc","n":25}' >&4
IFS= read -r pull1 <&4
printf '%s\n' "$pull1" | grep -q '"ok":true' \
    || { echo "socket smoke: idj_pull over tcp failed: $pull1"; exit 1; }
# SIGINT with the connection open and the cursor mid-stream: drain,
# checkpoint into --state-dir, exit 75.
kill -INT "$SERVE_PID"
rc=0; wait "$SERVE_PID" || rc=$?
exec 4>&- 4<&-
[ "$rc" = "75" ] || { echo "socket smoke: SIGINT exit $rc != 75"; exit 1; }
# "tc" hex-encodes to 7463.
[ -f "$SOCK_DIR/state/7463.snap" ] \
    || { echo "socket smoke: SIGINT left no cursor checkpoint"; exit 1; }
# Restart over a fresh socket; the resumed cursor's remainder plus the
# first window must equal the one-shot IDJ stream.
"$AMDJ_BIN" serve --r "$CKPT_DIR/a.amdj" --s "$CKPT_DIR/b.amdj" \
    --state-dir "$SOCK_DIR/state" --listen 127.0.0.1:0 \
    2> "$SOCK_DIR/err2.txt" &
SERVE_PID=$!
await_port "$SOCK_DIR/err2.txt"
exec 4<>"/dev/tcp/127.0.0.1/$PORT"
printf '%s\n' '{"op":"idj_pull","id":"tc","n":15}' >&4
IFS= read -r pull2 <&4
printf '%s\n' "$pull2" | grep -q '"ok":true' \
    || { echo "socket smoke: resumed pull over tcp failed: $pull2"; exit 1; }
printf '%s\n' '{"op":"shutdown"}' >&4
IFS= read -r resp <&4
exec 4>&- 4<&-
wait "$SERVE_PID" || { echo "socket smoke: shutdown exit $?"; exit 1; }
diff <(printf '%s\n%s\n' "$pull1" "$pull2" | serve_pairs) \
     <(grep -v '^#' "$SERVE_DIR/idj.txt") \
    || { echo "socket smoke: suspended+resumed tcp cursor stream differs"; exit 1; }
echo "socket smoke: tcp queries bit-identical, SIGINT exited 75, cursor resumed over a fresh socket"

# Stress tier (opt-in: STRESS=1 ./ci.sh): rerun the engine-matrix and
# schedule-perturbation properties in release mode with 4× the proptest
# cases. Both suites include 8-thread cells, so this is where racy
# work-stealing regressions that survive the quick tier get shaken out.
if [ "${STRESS:-0}" = "1" ]; then
    echo "== stress tier: engine_matrix + steal_schedules + checkpoint_resume + partitioned_matrix + serve_concurrent, 4x cases =="
    AMDJ_PROPTEST_CASES=48 cargo test -q --release \
        --package amdj-tests --test engine_matrix --test steal_schedules \
        --test checkpoint_resume --test partitioned_matrix --test serve_concurrent
fi

echo "ci.sh: all checks passed"
