#!/usr/bin/env bash
# Local CI: formatting, lints, full test suite. Vendored crates under
# vendor/ are workspace-excluded and deliberately not linted.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (all targets, warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo bench --no-run (benches must keep compiling) =="
cargo bench --no-run --workspace

echo "== cargo doc (no deps, warnings are errors) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "== cargo test =="
cargo test -q

echo "ci.sh: all checks passed"
