#!/usr/bin/env bash
# Local CI: formatting, lints, full test suite. Vendored crates under
# vendor/ are workspace-excluded and deliberately not linted.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (all targets, warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo bench --no-run (benches must keep compiling) =="
cargo bench --no-run --workspace

echo "== cargo doc (no deps, warnings are errors) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "== cargo test =="
cargo test -q

echo "== bench smoke: emitted JSON schema =="
# A tiny bench run; then validate the schema version and required columns
# so consumers of BENCH_kdj.json notice shape drift here, not downstream.
BENCH_SMOKE_JSON="$(mktemp -t bench_smoke.XXXXXX.json)"
trap 'rm -f "$BENCH_SMOKE_JSON"' EXIT
cargo run --release -q -p amdj-bench --bin amdj -- \
    bench --n 300 --k 20 --json "$BENCH_SMOKE_JSON" 2>/dev/null
grep -q '"schema_version": 4' "$BENCH_SMOKE_JSON" \
    || { echo "bench smoke: schema_version != 4"; exit 1; }
for col in op algo threads steal partition k wall_time_s node_accesses \
           pairs_computed results pairs_stolen steal_attempts barrier_idle_ns \
           buffer_hits buffer_misses buffer_hits_by_worker buffer_misses_by_worker; do
    grep -q "\"$col\":" "$BENCH_SMOKE_JSON" \
        || { echo "bench smoke: missing column '$col'"; exit 1; }
done
grep -q '"partition": "rr"' "$BENCH_SMOKE_JSON" \
    || { echo "bench smoke: missing round-robin ablation rows"; exit 1; }
echo "bench smoke: schema_version 4 with all required columns"

# Stress tier (opt-in: STRESS=1 ./ci.sh): rerun the engine-matrix and
# schedule-perturbation properties in release mode with 4× the proptest
# cases. Both suites include 8-thread cells, so this is where racy
# work-stealing regressions that survive the quick tier get shaken out.
if [ "${STRESS:-0}" = "1" ]; then
    echo "== stress tier: engine_matrix + steal_schedules, 4x cases =="
    AMDJ_PROPTEST_CASES=48 cargo test -q --release \
        --package amdj-tests --test engine_matrix --test steal_schedules
fi

echo "ci.sh: all checks passed"
