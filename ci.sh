#!/usr/bin/env bash
# Local CI: formatting, lints, full test suite. Vendored crates under
# vendor/ are workspace-excluded and deliberately not linted.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (all targets, warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo bench --no-run (benches must keep compiling) =="
cargo bench --no-run --workspace

echo "== cargo doc (no deps, warnings are errors) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "== cargo test =="
cargo test -q

# Stress tier (opt-in: STRESS=1 ./ci.sh): rerun the engine-matrix and
# schedule-perturbation properties in release mode with 4× the proptest
# cases. Both suites include 8-thread cells, so this is where racy
# work-stealing regressions that survive the quick tier get shaken out.
if [ "${STRESS:-0}" = "1" ]; then
    echo "== stress tier: engine_matrix + steal_schedules, 4x cases =="
    AMDJ_PROPTEST_CASES=48 cargo test -q --release \
        --package amdj-tests --test engine_matrix --test steal_schedules
fi

echo "ci.sh: all checks passed"
